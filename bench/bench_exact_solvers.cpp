// Exact-solver comparison: time-indexed MIP (with Eq. 6 time-scaling) vs
// the order branch & bound at full second precision.
//
// The paper conjectures that "an even larger improvement might be possible,
// if a second precise scaling is applied" (Section 4) but could not afford
// the memory. The order B&B sidesteps the grid entirely, so this bench can
// measure exactly that: for captured self-tuning steps it reports the best
// policy value, the scaled-ILP value (the paper's pipeline) and the true
// second-precision optimum, with solve times — quantifying how much of the
// optimality gap the time-scaling heuristic gives away.
#include <algorithm>
#include <array>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <thread>

#include "dynsched/sim/simulator.hpp"
#include "dynsched/tip/order_bnb.hpp"
#include "dynsched/tip/study.hpp"
#include "dynsched/tip/supervised.hpp"
#include "dynsched/trace/synthetic.hpp"
#include "dynsched/util/alloc_tracker.hpp"
#include "dynsched/util/flags.hpp"
#include "dynsched/util/journal.hpp"
#include "dynsched/util/strings.hpp"
#include "dynsched/util/table.hpp"
#include "dynsched/util/timer.hpp"

using namespace dynsched;

namespace {

/// One solved step, kept for the machine-readable report. Node and LP-size
/// counters are deterministic for a fixed workload and node budget — they
/// are the cross-host regression signal; the seconds only mean something on
/// a matching host (see scripts/bench_check.py).
struct StepRecord {
  Time time = 0;
  std::size_t jobs = 0;
  double policySld = 0;
  double ilpSld = 0;
  double exactSld = 0;
  long ilpNodes = 0;
  int lpRows = 0;
  int lpColumns = 0;
  long exactNodes = 0;
  bool exactOptimal = false;
  double ilpSeconds = 0;
  double exactSeconds = 0;
  // Allocation counters for the step's solves (both solvers), from
  // util::allocStats() deltas; all zero when the binary was built without
  // DYNSCHED_ALLOC_TRACK.
  std::uint64_t allocCount = 0;
  std::uint64_t allocBytes = 0;
  std::uint64_t peakBytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("bench_exact_solvers");
  auto& traceJobs = flags.addInt("trace-jobs", 700, "simulated trace length");
  auto& seed = flags.addInt("seed", 44, "workload seed");
  auto& steps = flags.addInt("steps", 6, "steps to solve");
  auto& timeLimit =
      flags.addDouble("time-limit", 15.0, "limit per solver per step [s]");
  auto& maxNodes = flags.addInt(
      "max-nodes", 0,
      "cap B&B nodes per solver per step (0 = solver defaults); with a node "
      "cap and a generous --time-limit the run is deterministic");
  auto& jsonPath = flags.addString(
      "json", "", "write a machine-readable report to this file");
  if (!flags.parse(argc, argv)) return 0;

  const auto swf = trace::ctcModel().generate(
      static_cast<std::size_t>(traceJobs), static_cast<std::uint64_t>(seed));
  sim::SimOptions options;
  options.kind = sim::SchedulerKind::DynP;
  options.snapshots.enabled = true;
  options.snapshots.minWaiting = 5;
  options.snapshots.maxWaiting = 14;  // order B&B territory
  sim::RmsSimulator simulator(core::Machine{430}, options);
  const auto report = simulator.run(core::fromSwf(swf));
  if (report.snapshots.empty()) {
    std::puts("no snapshots captured; increase --trace-jobs");
    return 1;
  }
  std::vector<sim::StepSnapshot> selected;
  const std::size_t want = std::min<std::size_t>(
      static_cast<std::size_t>(steps), report.snapshots.size());
  for (std::size_t i = 0; i < want; ++i) {
    selected.push_back(
        report.snapshots[i * (report.snapshots.size() - 1) /
                         std::max<std::size_t>(1, want - 1)]);
  }

  util::TextTable table({"step", "jobs", "policy SLDwA", "scaled-ILP SLDwA",
                         "exact SLDwA", "scaled loss", "true loss",
                         "ILP time", "exact time", "exact proven", "rung"});
  char buf[64];
  double sumScaled = 0, sumTrue = 0;
  std::size_t rows = 0;
  std::array<std::size_t, tip::kSolveRungs> rungCounts{};
  std::size_t budgetHits = 0;
  std::vector<StepRecord> records;
  for (const auto& snap : selected) {
    // Allocation window: both solves plus their model builds. Reset here,
    // read after the exact solve — the deltas are the step's counters.
    util::resetAllocStats();
    // The paper's pipeline: Eq. 6 scaled ILP + compaction.
    tip::StudyOptions study;
    study.scaling.totalMemoryBytes = 256ULL << 20;
    study.mip.timeLimitSeconds = timeLimit;
    if (maxNodes > 0) study.mip.maxNodes = static_cast<long>(maxNodes);
    const tip::StudyRow row = tip::runStep(snap, study);

    // Second-precision optimum via the order B&B.
    tip::TipInstance inst = tip::makeInstance(snap, study);
    tip::OrderBnbOptions orderOptions;
    orderOptions.timeLimitSeconds = timeLimit;
    if (maxNodes > 0) orderOptions.maxNodes = static_cast<long>(maxNodes);
    const tip::OrderBnbResult exact = tip::solveByOrderBnb(inst, orderOptions);
    const core::MetricEvaluator evaluator(inst.now,
                                          inst.history.machineSize());
    const double exactSld =
        evaluator.evaluate(exact.schedule, core::MetricKind::SldWA);
    const util::AllocStats stepAllocs = util::allocStats();
    const double trueLoss = (1.0 - exactSld / row.policyValue) * 100.0;
    sumScaled += row.perfLossPct;
    sumTrue += trueLoss;
    ++rows;
    ++rungCounts[static_cast<std::size_t>(tip::solveRungIndex(row.rung))];
    if (row.stopReason != util::CancelReason::None &&
        row.stopReason != util::CancelReason::Fault) {
      ++budgetHits;
    }

    std::vector<std::string> cells;
    cells.push_back("t=" + util::formatThousands(snap.time));
    cells.push_back(std::to_string(row.jobs));
    std::snprintf(buf, sizeof(buf), "%.3f", row.policyValue);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", row.ilpValue);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", exactSld);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%+.2f%%", row.perfLossPct);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%+.2f%%", trueLoss);
    cells.push_back(buf);
    cells.push_back(util::formatDuration(row.solveSeconds));
    cells.push_back(util::formatDuration(exact.seconds));
    cells.push_back(exact.optimal ? "yes" : "no (limit)");
    cells.push_back(tip::solveRungName(row.rung));
    table.addRow(std::move(cells));

    StepRecord record;
    record.time = snap.time;
    record.jobs = row.jobs;
    record.policySld = row.policyValue;
    record.ilpSld = row.ilpValue;
    record.exactSld = exactSld;
    record.ilpNodes = row.nodes;
    record.lpRows = row.lpRows;
    record.lpColumns = row.lpColumns;
    record.exactNodes = exact.nodes;
    record.exactOptimal = exact.optimal;
    record.ilpSeconds = row.solveSeconds;
    record.exactSeconds = exact.seconds;
    record.allocCount = stepAllocs.allocCount;
    record.allocBytes = stepAllocs.allocBytes;
    record.peakBytes = stepAllocs.peakBytes;
    records.push_back(record);
  }
  std::cout << table.render();
  if (rows > 0) {
    std::printf(
        "\naverages: scaled-ILP loss %+.2f%%, true second-precision loss "
        "%+.2f%% — the gap between the two is what Eq. 6 time-scaling "
        "gives away (paper Section 3.2/4).\n",
        sumScaled / static_cast<double>(rows),
        sumTrue / static_cast<double>(rows));
    std::printf(
        "ladder: optimal %zu, incumbent-gap %zu, coarsened-retry %zu, "
        "policy-fallback %zu; budget hit on %zu/%zu steps (%.0f%%).\n",
        rungCounts[0], rungCounts[1], rungCounts[2], rungCounts[3], budgetHits,
        rows, 100.0 * static_cast<double>(budgetHits) /
                  static_cast<double>(rows));
  }

  if (!jsonPath.empty()) {
    // The baseline comparator (scripts/bench_check.py) reads this. Totals
    // carry the regression gate; per-step rows are for diagnosing which
    // instance moved. The host block scopes the wall-clock comparison.
    long ilpNodes = 0, exactNodes = 0, lpRowsTotal = 0, lpColsTotal = 0;
    double ilpSeconds = 0, exactSeconds = 0;
    std::uint64_t allocCount = 0, allocBytes = 0, peakBytes = 0;
    for (const StepRecord& r : records) {
      ilpNodes += r.ilpNodes;
      exactNodes += r.exactNodes;
      lpRowsTotal += r.lpRows;
      lpColsTotal += r.lpColumns;
      ilpSeconds += r.ilpSeconds;
      exactSeconds += r.exactSeconds;
      allocCount += r.allocCount;
      allocBytes += r.allocBytes;
      peakBytes = std::max(peakBytes, r.peakBytes);
    }
    const auto num = [](double v) {
      char out[64];
      std::snprintf(out, sizeof(out), "%.10g", v);
      return std::string(out);
    };
    std::ostringstream json;
    json << "{\n  \"bench\": \"bench_exact_solvers\",\n"
         << "  \"schemaVersion\": 2,\n  \"allocTracking\": "
         << (util::allocTrackingEnabled() ? "true" : "false") << ",\n"
         << "  \"config\": {"
         << "\"traceJobs\": " << traceJobs << ", \"seed\": " << seed
         << ", \"steps\": " << steps << ", \"maxNodes\": " << maxNodes
         << ", \"timeLimitSeconds\": " << num(timeLimit) << "},\n"
         << "  \"host\": {\"cpus\": " << std::thread::hardware_concurrency()
         << ", \"compiler\": \"" << __VERSION__ << "\"},\n"
         << "  \"steps\": [";
    for (std::size_t i = 0; i < records.size(); ++i) {
      const StepRecord& r = records[i];
      json << (i > 0 ? "," : "") << "\n    {\"time\": " << r.time
           << ", \"jobs\": " << r.jobs
           << ", \"policySld\": " << num(r.policySld)
           << ", \"ilpSld\": " << num(r.ilpSld)
           << ", \"exactSld\": " << num(r.exactSld)
           << ", \"ilpNodes\": " << r.ilpNodes
           << ", \"lpRows\": " << r.lpRows
           << ", \"lpColumns\": " << r.lpColumns
           << ", \"exactNodes\": " << r.exactNodes
           << ", \"exactOptimal\": " << (r.exactOptimal ? "true" : "false")
           << ", \"ilpSeconds\": " << num(r.ilpSeconds)
           << ", \"exactSeconds\": " << num(r.exactSeconds)
           << ", \"allocCount\": " << r.allocCount
           << ", \"allocBytes\": " << r.allocBytes
           << ", \"peakBytes\": " << r.peakBytes << "}";
    }
    json << "\n  ],\n  \"totals\": {"
         << "\"steps\": " << records.size()
         << ", \"ilpNodes\": " << ilpNodes
         << ", \"exactNodes\": " << exactNodes
         << ", \"lpRows\": " << lpRowsTotal
         << ", \"lpColumns\": " << lpColsTotal
         << ", \"avgScaledLossPct\": "
         << num(rows > 0 ? sumScaled / static_cast<double>(rows) : 0)
         << ", \"avgTrueLossPct\": "
         << num(rows > 0 ? sumTrue / static_cast<double>(rows) : 0)
         << ", \"ilpSeconds\": " << num(ilpSeconds)
         << ", \"exactSeconds\": " << num(exactSeconds)
         << ", \"allocCount\": " << allocCount
         << ", \"allocBytes\": " << allocBytes
         << ", \"peakBytes\": " << peakBytes << "}\n}\n";
    try {
      util::atomicWriteFile(jsonPath, json.str());
    } catch (const util::JournalError& e) {
      std::fprintf(stderr, "cannot write %s: %s\n", jsonPath.c_str(),
                   e.what());
      return 1;
    }
    std::printf("json report: %s\n", jsonPath.c_str());
  }
  return 0;
}
