// Runtime-estimate accuracy sweep.
//
// Planning-based scheduling lives on user estimates (paper Section 3.1:
// "we are using the estimated duration of jobs, as we assume planning based
// resource management"). This bench sweeps the over-estimation factor of
// the synthetic workload from perfect estimates (factor 1) to wildly
// inflated requests (factor 16) and reports how each scheduler's observed
// metrics respond — the classic estimate-quality question (Mu'alem &
// Feitelson) inside this reproduction's substrate.
#include <cstdio>
#include <iostream>

#include "dynsched/sim/simulator.hpp"
#include "dynsched/trace/synthetic.hpp"
#include "dynsched/util/flags.hpp"
#include "dynsched/util/table.hpp"

using namespace dynsched;

int main(int argc, char** argv) {
  util::FlagSet flags("bench_estimate_accuracy");
  auto& jobs = flags.addInt("jobs", 800, "jobs per sweep point");
  auto& seed = flags.addInt("seed", 71, "workload seed");
  if (!flags.parse(argc, argv)) return 0;

  util::TextTable table({"max over-estimation", "scheduler", "ART [s]",
                         "AWT [s]", "SLD", "util", "switches"});
  table.setAlign(0, util::TextTable::Align::Left);
  table.setAlign(1, util::TextTable::Align::Left);

  for (const double factor : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    trace::SyntheticModel model = trace::ctcModel();
    model.estimates.maxFactor = factor;
    // Same seed at every sweep point: identical arrival/runtime streams,
    // only the estimates change.
    const auto swf = model.generate(static_cast<std::size_t>(jobs),
                                    static_cast<std::uint64_t>(seed));
    const auto jobList = core::fromSwf(swf);
    const core::Machine machine{430};
    char label[32];
    std::snprintf(label, sizeof(label), "x%.0f", factor);

    const auto addRow = [&](const std::string& name,
                            const sim::SimulationReport& r) {
      char art[32], awt[32], sld[32], util_[32];
      std::snprintf(art, sizeof(art), "%.0f", r.avgResponseTime());
      std::snprintf(awt, sizeof(awt), "%.0f", r.avgWaitTime());
      std::snprintf(sld, sizeof(sld), "%.2f", r.avgSlowdown());
      std::snprintf(util_, sizeof(util_), "%.3f",
                    r.utilization(machine.nodes));
      table.addRow({label, name, art, awt, sld, util_,
                    std::to_string(r.switches.size())});
    };
    {
      sim::SimOptions options;
      options.kind = sim::SchedulerKind::DynP;
      sim::RmsSimulator simulator(machine, options);
      addRow("dynP", simulator.run(jobList));
    }
    for (const core::PolicyKind policy :
         {core::PolicyKind::Fcfs, core::PolicyKind::Sjf}) {
      sim::SimOptions options;
      options.kind = sim::SchedulerKind::FixedPolicy;
      options.fixedPolicy = policy;
      sim::RmsSimulator simulator(machine, options);
      addRow(core::policyName(policy), simulator.run(jobList));
    }
    table.addRule();
  }
  std::cout << table.render();
  std::puts(
      "\nexpected shape: estimates drive the plans, actual runtimes drive\n"
      "execution; inflated estimates distort SJF/LJF orderings and the\n"
      "planned start times, but early-completion replanning recovers most\n"
      "of the loss — metrics degrade gracefully with the factor.");
  return 0;
}
