// dynsched-server: the scheduler-as-a-service daemon.
//
// Listens on a Unix-domain socket (or TCP loopback), answers framed
// ScheduleRequests through the supervised degradation ladder, sheds load
// beyond the admission limits, journals every answer for idempotent replay,
// and drains gracefully on SIGTERM/SIGINT (finish in-flight work, flush the
// journal, exit 0). Restarting with --resume rebuilds the answer cache from
// the journal, tolerating a torn tail from a crash.
//
//   dynsched-server --socket /tmp/dynsched.sock --journal answers.journal
//       --resume --max-concurrent 2 --default-max-nodes 20000
#include <cstdio>
#include <exception>
#include <string>
#include <utility>

#include "dynsched/serve/server.hpp"
#include "dynsched/util/flags.hpp"
#include "dynsched/util/signals.hpp"

using namespace dynsched;

int main(int argc, char** argv) {
  util::FlagSet flags("dynsched-server");
  auto& socketPath = flags.addString(
      "socket", "", "Unix-domain socket path (empty: TCP loopback)");
  auto& tcpPort = flags.addInt(
      "tcp-port", 0, "TCP port when --socket is empty (0 picks a free port)");
  auto& journal = flags.addString(
      "journal", "", "answer journal path (empty = in-memory cache only)");
  auto& resume = flags.addBool(
      "resume", false, "replay answers from --journal before serving");
  auto& fsync = flags.addBool(
      "fsync", false, "fsync the journal after every answer");
  auto& maxConcurrent =
      flags.addInt("max-concurrent", 2, "solves allowed to run concurrently");
  auto& maxQueue = flags.addInt(
      "max-queue", 8, "admitted requests allowed to wait for a solve slot");
  auto& maxInflightMb = flags.addInt(
      "max-inflight-mb", 256, "in-flight memory admission budget [MiB]");
  auto& cacheCapacity =
      flags.addInt("cache-capacity", 1024, "answer-cache entries (FIFO)");
  auto& defaultWallSeconds = flags.addDouble(
      "default-wall-seconds", 0.0,
      "per-request deadline when the request carries none (0 = unlimited)");
  auto& defaultMaxNodes = flags.addInt(
      "default-max-nodes", 0,
      "per-request B&B node budget when the request carries none");
  auto& ioThreads =
      flags.addInt("io-threads", 4, "connection-handler threads");
  auto& maxConnections = flags.addInt(
      "max-connections", 32, "connections served concurrently before shedding");
  if (!flags.parse(argc, argv)) return 0;
  if (resume && journal.empty()) {
    std::fprintf(stderr, "--resume requires --journal PATH\n");
    return 2;
  }
  if (socketPath.empty() && tcpPort == 0) {
    // Allowed (a free port is picked), but scripts need to know it.
    std::fprintf(stderr,
                 "note: no --socket and --tcp-port 0; the picked port is "
                 "printed below\n");
  }

  try {
    serve::ServerOptions options;
    options.unixPath = socketPath;
    options.tcpPort = static_cast<std::uint16_t>(tcpPort);
    options.maxConnections = static_cast<std::size_t>(maxConnections);
    options.ioThreads = static_cast<std::size_t>(ioThreads);
    options.service.maxConcurrent = static_cast<std::size_t>(maxConcurrent);
    options.service.maxQueueDepth = static_cast<std::size_t>(maxQueue);
    options.service.maxInFlightBytes =
        static_cast<std::uint64_t>(maxInflightMb) << 20;
    options.service.cacheCapacity = static_cast<std::size_t>(cacheCapacity);
    options.service.defaultWallSeconds = defaultWallSeconds;
    options.service.defaultMaxNodes = static_cast<long>(defaultMaxNodes);
    options.service.journal.path = journal;
    options.service.journal.resume = resume;
    options.service.journal.fsyncEachRecord = fsync;

    serve::Server server(std::move(options));
    std::fprintf(stderr, "dynsched-server: listening on %s (recovered %llu answers)\n",
                 socketPath.empty()
                     ? ("127.0.0.1:" + std::to_string(server.port())).c_str()
                     : socketPath.c_str(),
                 static_cast<unsigned long long>(
                     server.service().recoveredAnswers()));
    if (socketPath.empty()) {
      std::printf("%u\n", static_cast<unsigned>(server.port()));
      std::fflush(stdout);
    }

    // SIGTERM/SIGINT set the interrupt flag; the accept loop observes it
    // and drains. The guard restores prior dispositions on exit.
    util::SignalGuard signalGuard;
    server.run();
    std::fprintf(stderr, "dynsched-server: drained, exiting\n");
    return 0;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "dynsched-server: %s\n", err.what());
    return 1;
  }
}
