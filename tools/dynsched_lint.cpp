// dynsched-lint CLI. Scans the given files/directories against the project
// rule catalog (see tools/lint/lint.hpp) and reports findings as
// "file:line:col: RULE: message" text or as JSON.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O errors — so CI can
// distinguish "the tree is dirty" from "the gate itself did not run".
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

int usage(std::ostream& os, int exitCode) {
  os << "usage: dynsched_lint [options] <path>...\n"
        "\n"
        "Scans *.cpp/*.cc/*.hpp/*.h under the given paths against the\n"
        "dynsched project rules (DSL001..DSL007 structural, DSL100..DSL107\n"
        "hot-path performance, DSL200..DSL207 module graph / layering).\n"
        "\n"
        "options:\n"
        "  --json                  emit the JSON report on stdout\n"
        "  --json-out <file>       also write the JSON report to <file>\n"
        "  --layers <file>         layer contract (tools/lint/layers.txt);\n"
        "                          enables the DSL200 layer gate\n"
        "  --graph-json <file>     write the resolved module graph as JSON\n"
        "  --graph-dot <file>      write the module graph as Graphviz dot\n"
        "  --baseline <file>       report only findings NOT recorded in\n"
        "                          <file>; recorded ones are suppressed,\n"
        "                          stale record entries are warned about\n"
        "  --write-baseline <file> record the current findings to <file>\n"
        "                          and exit 0 (the flag-day escape hatch:\n"
        "                          land a new rule family gating only new\n"
        "                          code, then burn the recorded debt down)\n"
        "  --list-rules            print the rule catalog as JSON and exit\n"
        "  -h, --help              this help\n"
        "\n"
        "Baselines record rule+file+snippet (never line numbers), so they\n"
        "survive unrelated edits; re-record after fixing to shrink them.\n"
        "\n"
        "Suppress a finding with a reasoned comment on the same line or the\n"
        "line above:\n"
        "  // dynsched-lint: allow(DSL004) writes a temp file it owns\n"
        "\n"
        "exit: 0 clean, 1 findings, 2 usage/errors\n";
  return exitCode;
}

std::string jsonQuote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

int listRules() {
  std::cout << "{\n  \"tool\": \"dynsched-lint\",\n  \"rules\": [";
  bool first = true;
  for (const auto& rule : dynsched::lint::ruleCatalog()) {
    std::cout << (first ? "" : ",") << "\n    {\"id\": " << jsonQuote(rule.id)
              << ", \"summary\": " << jsonQuote(rule.summary)
              << ", \"scope\": " << jsonQuote(rule.scope)
              << ", \"since\": " << rule.since << "}";
    first = false;
  }
  std::cout << "\n  ]\n}\n";
  return 0;
}

bool writeFileOrComplain(const std::string& path, const std::string& text) {
  // Advisory report/baseline output, not crash-safe state, and this tool
  // must stay dependency-free of the dynsched libraries it lints.
  // dynsched-lint: allow(DSL004) standalone tool; report files are advisory output
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "dynsched-lint: cannot write " << path << "\n";
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool jsonStdout = false;
  std::string jsonOut;
  std::string baselinePath;
  std::string writeBaselinePath;
  std::string layersPath;
  std::string graphJsonOut;
  std::string graphDotOut;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") return usage(std::cout, 0);
    if (arg == "--list-rules") return listRules();
    if (arg == "--json") {
      jsonStdout = true;
      continue;
    }
    if (arg == "--json-out" || arg == "--baseline" ||
        arg == "--write-baseline" || arg == "--layers" ||
        arg == "--graph-json" || arg == "--graph-dot") {
      if (i + 1 >= argc) {
        std::cerr << "dynsched-lint: " << arg << " needs a file argument\n";
        return 2;
      }
      std::string& slot = arg == "--json-out"       ? jsonOut
                          : arg == "--baseline"     ? baselinePath
                          : arg == "--write-baseline" ? writeBaselinePath
                          : arg == "--layers"       ? layersPath
                          : arg == "--graph-json"   ? graphJsonOut
                                                    : graphDotOut;
      slot = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dynsched-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "dynsched-lint: no paths given\n";
    return usage(std::cerr, 2);
  }
  if (!baselinePath.empty() && !writeBaselinePath.empty()) {
    std::cerr << "dynsched-lint: --baseline and --write-baseline are "
                 "mutually exclusive\n";
    return 2;
  }

  dynsched::lint::TreeLintOptions options;
  if (!layersPath.empty()) {
    std::ifstream in(layersPath, std::ios::binary);
    if (!in) {
      std::cerr << "dynsched-lint: cannot read layers file " << layersPath
                << "\n";
      return 2;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    options.layersText = contents.str();
    if (options.layersText.empty()) {
      std::cerr << "dynsched-lint: layers file " << layersPath
                << " is empty\n";
      return 2;
    }
  }
  dynsched::lint::ModuleGraph graph;
  options.graphOut = &graph;

  dynsched::lint::LintResult result = dynsched::lint::lintPaths(paths, options);

  if (!graphJsonOut.empty() &&
      !writeFileOrComplain(graphJsonOut,
                           dynsched::lint::renderGraphJson(graph))) {
    return 2;
  }
  if (!graphDotOut.empty() &&
      !writeFileOrComplain(graphDotOut,
                           dynsched::lint::renderGraphDot(graph))) {
    return 2;
  }

  if (!writeBaselinePath.empty()) {
    if (!writeFileOrComplain(writeBaselinePath,
                             dynsched::lint::renderBaseline(result))) {
      return 2;
    }
    std::cout << "dynsched-lint: recorded " << result.findings.size()
              << " finding" << (result.findings.size() == 1 ? "" : "s")
              << " to " << writeBaselinePath << "\n";
    return result.errors.empty() ? 0 : 2;
  }

  if (!baselinePath.empty()) {
    std::ifstream in(baselinePath, std::ios::binary);
    if (!in) {
      std::cerr << "dynsched-lint: cannot read baseline " << baselinePath
                << "\n";
      return 2;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    const dynsched::lint::BaselineResult applied =
        dynsched::lint::applyBaseline(result, contents.str());
    if (!applied.error.empty()) {
      std::cerr << "dynsched-lint: " << baselinePath << ": " << applied.error
                << "\n";
      return 2;
    }
    for (const std::string& stale : applied.stale) {
      std::cerr << "dynsched-lint: stale baseline entry (no longer fires): "
                << stale << "\n";
    }
    if (applied.suppressed > 0) {
      std::cerr << "dynsched-lint: " << applied.suppressed
                << " recorded finding"
                << (applied.suppressed == 1 ? "" : "s")
                << " suppressed by baseline " << baselinePath << "\n";
    }
  }

  if (!jsonOut.empty() &&
      !writeFileOrComplain(jsonOut, dynsched::lint::renderJson(result))) {
    return 2;
  }
  std::cout << (jsonStdout ? dynsched::lint::renderJson(result)
                           : dynsched::lint::renderText(result));
  if (!result.errors.empty()) {
    for (const std::string& error : result.errors) {
      std::cerr << "dynsched-lint: error: " << error << "\n";
    }
    return 2;
  }
  return result.findings.empty() ? 0 : 1;
}
