// dynsched-lint CLI. Scans the given files/directories against the project
// rule catalog (see tools/lint/lint.hpp) and reports findings as
// "file:line:col: RULE: message" text or as JSON.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O errors — so CI can
// distinguish "the tree is dirty" from "the gate itself did not run".
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

int usage(std::ostream& os, int exitCode) {
  os << "usage: dynsched_lint [options] <path>...\n"
        "\n"
        "Scans *.cpp/*.cc/*.hpp/*.h under the given paths against the\n"
        "dynsched project rules (DSL001..DSL007).\n"
        "\n"
        "options:\n"
        "  --json             emit the JSON report on stdout instead of text\n"
        "  --json-out <file>  also write the JSON report to <file>\n"
        "  --list-rules       print the rule catalog and exit\n"
        "  -h, --help         this help\n"
        "\n"
        "Suppress a finding with a reasoned comment on the same line or the\n"
        "line above:\n"
        "  // dynsched-lint: allow(DSL004) writes a temp file it owns\n"
        "\n"
        "exit: 0 clean, 1 findings, 2 usage/errors\n";
  return exitCode;
}

}  // namespace

int main(int argc, char** argv) {
  bool jsonStdout = false;
  std::string jsonOut;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const auto& rule : dynsched::lint::ruleCatalog()) {
        std::cout << rule.id << "  " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--json") {
      jsonStdout = true;
      continue;
    }
    if (arg == "--json-out") {
      if (i + 1 >= argc) {
        std::cerr << "dynsched-lint: --json-out needs a file argument\n";
        return 2;
      }
      jsonOut = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dynsched-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "dynsched-lint: no paths given\n";
    return usage(std::cerr, 2);
  }

  const dynsched::lint::LintResult result = dynsched::lint::lintPaths(paths);

  if (!jsonOut.empty()) {
    // The report file is advisory CI output, not crash-safe state, and this
    // tool must stay dependency-free of the dynsched libraries it lints.
    // dynsched-lint: allow(DSL004) standalone tool; report file is advisory output
    std::ofstream out(jsonOut, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "dynsched-lint: cannot write " << jsonOut << "\n";
      return 2;
    }
    out << dynsched::lint::renderJson(result);
  }
  std::cout << (jsonStdout ? dynsched::lint::renderJson(result)
                           : dynsched::lint::renderText(result));
  if (!result.errors.empty()) {
    for (const std::string& error : result.errors) {
      std::cerr << "dynsched-lint: error: " << error << "\n";
    }
    return 2;
  }
  return result.findings.empty() ? 0 : 1;
}
