// dynsched-client: deterministic request generator and retrying client.
//
// Generates a seeded stream of scheduling requests (synthetic waiting sets
// over a free-resource staircase), sends them to a dynsched-server with
// bounded decorrelated-jitter retries, and prints each answer's canonical
// (timing-free) text to stdout. The same --seed/--count always produces the
// same requests, so the serve smoke and kill-matrix legs can diff a
// restarted server's replayed answers byte-for-byte against a reference run.
//
//   dynsched-client --socket /tmp/dynsched.sock --count 50 --seed 7
//       --max-nodes 4000 > answers.txt
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "dynsched/core/job.hpp"
#include "dynsched/serve/client.hpp"
#include "dynsched/util/flags.hpp"
#include "dynsched/util/rng.hpp"

using namespace dynsched;

namespace {

/// The i-th request of a seeded stream. Self-seeding per index keeps the
/// stream identical across reruns even when earlier requests failed.
serve::ScheduleRequest makeRequest(std::uint64_t seed, std::uint64_t index,
                                   NodeCount nodes, long maxNodes,
                                   double wallSeconds) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + index + 1);
  serve::ScheduleRequest request;
  request.clientRequestId = index;
  request.machine = core::Machine{nodes};
  request.now = static_cast<Time>(1000 * (index + 1));
  request.metric = core::MetricKind::SldWA;
  request.maxNodes = maxNodes;
  request.wallSeconds = wallSeconds;

  // Half the requests carry a running-job staircase (nodes free up over
  // time, the last entry is the whole machine — the Figure 1 shape).
  if (rng.uniform() < 0.5) {
    const int steps = static_cast<int>(rng.uniformInt(1, 3));
    Time when = request.now;
    NodeCount freeNodes =
        static_cast<NodeCount>(rng.uniformInt(1, nodes > 1 ? nodes - 1 : 1));
    for (int s = 0; s < steps; ++s) {
      request.history.push_back(core::MachineHistory::Entry{when, freeNodes});
      when += static_cast<Time>(rng.uniformInt(60, 600));
      freeNodes = static_cast<NodeCount>(
          rng.uniformInt(freeNodes, static_cast<std::int64_t>(nodes)));
    }
    request.history.push_back(core::MachineHistory::Entry{when, nodes});
  }

  const int jobCount = static_cast<int>(rng.uniformInt(3, 8));
  request.jobs.reserve(static_cast<std::size_t>(jobCount));
  for (int j = 0; j < jobCount; ++j) {
    core::Job job;
    job.id = static_cast<JobId>(index * 1000 + static_cast<std::uint64_t>(j));
    job.submit = request.now - static_cast<Time>(rng.uniformInt(0, 900));
    job.width = static_cast<NodeCount>(
        rng.uniformInt(1, static_cast<std::int64_t>(nodes)));
    job.estimate = static_cast<Time>(rng.uniformInt(120, 3600));
    job.actualRuntime =
        static_cast<Time>(rng.uniformInt(60, job.estimate));
    request.jobs.push_back(job);
  }
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("dynsched-client");
  auto& socketPath = flags.addString(
      "socket", "", "Unix-domain socket path (empty: TCP loopback)");
  auto& tcpPort =
      flags.addInt("tcp-port", 0, "TCP port when --socket is empty");
  auto& count = flags.addInt("count", 10, "requests to send");
  auto& seed = flags.addInt("seed", 7, "request-stream seed");
  auto& nodes = flags.addInt("nodes", 64, "machine size of the requests");
  auto& maxNodes = flags.addInt(
      "max-nodes", 4000, "per-request B&B node budget (determinism knob)");
  auto& wallSeconds = flags.addDouble(
      "wall-seconds", 0.0, "per-request deadline (0 = server default)");
  auto& retries =
      flags.addInt("retries", 5, "attempts per request (incl. the first)");
  auto& timeoutMs =
      flags.addInt("timeout-ms", 30000, "per-response wait [ms]");
  auto& health = flags.addBool(
      "health", false, "fetch and print server health stats, then exit");
  if (!flags.parse(argc, argv)) return 0;
  if (socketPath.empty() && tcpPort == 0) {
    std::fprintf(stderr, "need --socket PATH or --tcp-port PORT\n");
    return 2;
  }

  serve::ClientOptions options;
  options.unixPath = socketPath;
  options.tcpPort = static_cast<std::uint16_t>(tcpPort);
  options.timeoutMs = static_cast<int>(timeoutMs);
  options.retry.maxAttempts = static_cast<int>(retries);
  options.rngSeed = static_cast<std::uint64_t>(seed);
  serve::Client client(options);

  try {
    if (health) {
      const serve::HealthStats stats = client.health();
      std::printf(
          "accepted %llu completed %llu shed %llu malformed %llu errors %llu\n"
          "cacheHits %llu queueDepth %u inFlight %u draining %d\n"
          "rungs optimal %llu incumbent %llu coarsened %llu fallback %llu\n"
          "latency p50 %.3fms p99 %.3fms\n"
          "recovered %llu answers, %llu torn tails, %llu dropped bytes\n",
          static_cast<unsigned long long>(stats.accepted),
          static_cast<unsigned long long>(stats.completed),
          static_cast<unsigned long long>(stats.shed),
          static_cast<unsigned long long>(stats.malformed),
          static_cast<unsigned long long>(stats.errors),
          static_cast<unsigned long long>(stats.cacheHits),
          stats.queueDepth, stats.inFlight, stats.draining ? 1 : 0,
          static_cast<unsigned long long>(stats.rungCount[0]),
          static_cast<unsigned long long>(stats.rungCount[1]),
          static_cast<unsigned long long>(stats.rungCount[2]),
          static_cast<unsigned long long>(stats.rungCount[3]),
          stats.p50Ms, stats.p99Ms,
          static_cast<unsigned long long>(stats.recoveredAnswers),
          static_cast<unsigned long long>(stats.tornTails),
          static_cast<unsigned long long>(stats.droppedTailBytes));
      return 0;
    }

    int notOk = 0;
    for (std::int64_t i = 0; i < count; ++i) {
      const serve::ScheduleRequest request = makeRequest(
          static_cast<std::uint64_t>(seed), static_cast<std::uint64_t>(i),
          static_cast<NodeCount>(nodes), static_cast<long>(maxNodes),
          wallSeconds);
      const serve::ScheduleResponse response = client.schedule(request);
      std::printf("request %lld\n%s\n", static_cast<long long>(i),
                  serve::canonicalResponseText(response).c_str());
      if (response.status != serve::ResponseStatus::Ok) ++notOk;
    }
    std::fflush(stdout);
    if (notOk > 0) {
      std::fprintf(stderr, "dynsched-client: %d of %lld requests not Ok\n",
                   notOk, static_cast<long long>(count));
      return 1;
    }
    return 0;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "dynsched-client: %s\n", err.what());
    return 1;
  }
}
