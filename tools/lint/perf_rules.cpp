// Hot-path performance rules (DSL100..DSL107) and the scope analysis that
// powers them. The analysis is a heuristic single pass over the token
// stream: it tracks brace scopes (block / loop / function), loop nesting
// per token (reset inside lambda and function bodies), and records every
// function definition with its parameter list, body range, and return-type
// tokens. It is deliberately conservative — each rule only consumes facts
// the pass is confident about, so a miss costs a finding, never a false
// build break.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/internal.hpp"

namespace dynsched::lint::internal {

namespace {

using Kind = Token::Kind;

bool isIdent(const Token& t) { return t.kind == Kind::Ident; }

/// Matches tokens[open] == "(" forward to its ")". Returns tokens.size() on
/// imbalance.
std::size_t matchParen(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == "(") ++depth;
    if (tokens[i].text == ")") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return tokens.size();
}

/// Matches tokens[open] == "{" forward to its "}".
std::size_t matchBrace(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == "{") ++depth;
    if (tokens[i].text == "}") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return tokens.size();
}

/// Skips a balanced template argument list: tokens[at] == "<"; returns the
/// index just past the closing ">". The tokenizer emits ">>" as one token,
/// which closes two levels. Returns `at` unchanged if the list does not
/// close within the statement (then "<" was a comparison, not a template).
std::size_t skipTemplateArgs(const std::vector<Token>& tokens,
                             std::size_t at) {
  int depth = 0;
  for (std::size_t i = at; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == "<") ++depth;
    else if (t == ">") --depth;
    else if (t == ">>") depth -= 2;
    else if (t == ";" || t == "{" || t == "}") return at;  // not a template
    if (depth <= 0) return i + 1;
  }
  return at;
}

const std::set<std::string>& keywordSet() {
  static const std::set<std::string> kKeywords = {
      "if",     "for",   "while",  "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "do",   "else",   "case",
      "new",    "delete", "throw", "static_assert", "alignas", "co_await",
      "co_return", "co_yield", "goto", "default", "operator", "requires"};
  return kKeywords;
}

// ---------------------------------------------------------------------------
// Function-definition pre-pass

/// Recognizes function definitions by shape: `name ( params ) [qualifiers]
/// [-> type] [: init-list] {`. Plain calls never survive the filter — a
/// call is followed by `;`/`,`/operator, and a call statement has no
/// return-type tokens before the name. Also recognizes lambdas:
/// `[captures] [(params)] [specifiers] [-> type] {`.
void findFunctions(const std::vector<Token>& tokens,
                   std::vector<FunctionDef>& out,
                   std::map<std::size_t, std::size_t>& bodyIndex) {
  const std::size_t n = tokens.size();
  for (std::size_t i = 0; i < n; ++i) {
    // ---- lambdas: '[' not preceded by a value (ident / ')' / ']') ----
    if (tokens[i].text == "[") {
      const bool subscript =
          i > 0 && (isIdent(tokens[i - 1]) || tokens[i - 1].text == ")" ||
                    tokens[i - 1].text == "]");
      if (subscript) continue;
      // match ']'
      int depth = 0;
      std::size_t close = n;
      for (std::size_t j = i; j < n; ++j) {
        if (tokens[j].text == "[") ++depth;
        if (tokens[j].text == "]") {
          --depth;
          if (depth == 0) { close = j; break; }
        }
      }
      if (close == n) continue;
      std::size_t j = close + 1;
      FunctionDef def;
      def.lambda = true;
      def.name = "<lambda>";
      def.nameIndex = i;
      if (j < n && tokens[j].text == "(") {
        def.paramsBegin = j;
        def.paramsEnd = matchParen(tokens, j);
        if (def.paramsEnd == n) continue;
        j = def.paramsEnd + 1;
      }
      while (j < n && isIdent(tokens[j]) &&
             (tokens[j].text == "mutable" || tokens[j].text == "noexcept" ||
              tokens[j].text == "constexpr")) {
        ++j;
      }
      if (j < n && tokens[j].text == "->") {
        ++j;
        while (j < n && tokens[j].text != "{" && tokens[j].text != ";" &&
               tokens[j].text != ")") {
          if (tokens[j].text == "<") {
            const std::size_t past = skipTemplateArgs(tokens, j);
            if (past == j) break;
            j = past;
          } else {
            ++j;
          }
        }
      }
      if (j >= n || tokens[j].text != "{") continue;
      def.bodyBegin = j;
      def.bodyEnd = matchBrace(tokens, j);
      if (def.bodyEnd == n) continue;
      bodyIndex.emplace(def.bodyBegin, out.size());
      out.push_back(def);
      continue;
    }

    // ---- named functions: Ident '(' ----
    if (!isIdent(tokens[i]) || i + 1 >= n || tokens[i + 1].text != "(") {
      continue;
    }
    if (keywordSet().count(tokens[i].text) > 0) continue;
    // Member calls (`x.f(...)`) are never definitions.
    if (i > 0 &&
        (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
      continue;
    }
    const std::size_t paramsEnd = matchParen(tokens, i + 1);
    if (paramsEnd == n) continue;
    // Walk forward over trailing qualifiers to find the body '{' (or bail:
    // declaration / expression).
    std::size_t j = paramsEnd + 1;
    bool sawInitList = false;
    while (j < n) {
      const std::string& t = tokens[j].text;
      if (t == "{") break;
      if (t == "const" || t == "noexcept" || t == "override" ||
          t == "final" || t == "mutable" || t == "try") {
        ++j;
        continue;
      }
      if (t == "(") {  // noexcept(...) or a macro qualifier's arguments
        const std::size_t close = matchParen(tokens, j);
        if (close == n) { j = n; break; }
        j = close + 1;
        continue;
      }
      if (isIdent(tokens[j]) && tokens[j].text.rfind("DYNSCHED_", 0) == 0) {
        ++j;  // attribute macro, possibly followed by '(' handled above
        continue;
      }
      if (t == "->") {  // trailing return type
        ++j;
        while (j < n && tokens[j].text != "{" && tokens[j].text != ";") {
          if (tokens[j].text == "<") {
            const std::size_t past = skipTemplateArgs(tokens, j);
            if (past == j) break;
            j = past;
          } else {
            ++j;
          }
        }
        continue;
      }
      if (t == ":" && !sawInitList) {  // constructor init list
        sawInitList = true;
        ++j;
        // Skip `name(args)` / `name{args}` [, ...] up to the body '{' — an
        // initializer's '{' is directly preceded by an identifier, the
        // body's '{' by ')' or '}'.
        while (j < n) {
          if (tokens[j].text == "{" && j > 0 &&
              (tokens[j - 1].text == ")" || tokens[j - 1].text == "}")) {
            break;
          }
          if (tokens[j].text == "(") {
            const std::size_t close = matchParen(tokens, j);
            if (close == n) { j = n; break; }
            j = close + 1;
            continue;
          }
          if (tokens[j].text == "{") {
            const std::size_t close = matchBrace(tokens, j);
            if (close == n) { j = n; break; }
            j = close + 1;
            continue;
          }
          if (tokens[j].text == ";") { j = n; break; }
          ++j;
        }
        continue;
      }
      j = n;  // ';', '=', ',', operator ... — not a definition
      break;
    }
    if (j >= n || tokens[j].text != "{") continue;

    // Return-type tokens: walk backwards from the name over type shapes.
    // A definition has a return type (or is a ctor/dtor qualified by '::');
    // a call statement has neither — its name follows ';', '{', '}', '='...
    std::size_t returnBegin = i;
    while (returnBegin > 0) {
      const Token& prev = tokens[returnBegin - 1];
      if (prev.text == "::" || prev.text == "*" || prev.text == "&" ||
          prev.text == "&&" || prev.text == "~") {
        --returnBegin;
        continue;
      }
      if (prev.text == ">" || prev.text == ">>") {
        // closing of a template type in the return position — scan back to
        // its '<'
        int depth = prev.text == ">>" ? 2 : 1;
        std::size_t k = returnBegin - 1;
        bool ok = false;
        while (k > 0 && depth > 0) {
          --k;
          if (tokens[k].text == ">") ++depth;
          else if (tokens[k].text == ">>") depth += 2;
          else if (tokens[k].text == "<") --depth;
          if (tokens[k].text == ";" || tokens[k].text == "{" ||
              tokens[k].text == "}") {
            break;
          }
        }
        if (depth == 0) { returnBegin = k; ok = true; }
        if (!ok) break;
        continue;
      }
      if (isIdent(prev)) {
        if (keywordSet().count(prev.text) > 0) break;
        if (prev.text == "else" || prev.text == "return") break;
        --returnBegin;
        continue;
      }
      if (prev.text == ",") break;  // template args of an enclosing list
      break;
    }
    const bool qualifiedName =
        i >= 2 && tokens[i - 1].text == "::";  // Foo::bar / Foo::Foo
    if (returnBegin == i && !qualifiedName) continue;  // a call, not a def
    // `tokens[returnBegin]` may still be a specifier (static/inline/...);
    // that is fine — DSL107 only looks for container names and '&'.

    FunctionDef def;
    def.name = tokens[i].text;
    def.nameIndex = i;
    def.paramsBegin = i + 1;
    def.paramsEnd = paramsEnd;
    def.bodyBegin = j;
    def.bodyEnd = matchBrace(tokens, j);
    if (def.bodyEnd == n) continue;
    def.returnBegin = returnBegin;
    bodyIndex.emplace(def.bodyBegin, out.size());
    out.push_back(def);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Scope walk: loop depth per token

ScopeInfo analyzeScopes(const std::vector<Token>& tokens) {
  ScopeInfo info;
  info.loopDepth.assign(tokens.size(), 0);
  std::map<std::size_t, std::size_t> bodyIndex;  // '{' index -> function
  findFunctions(tokens, info.functions, bodyIndex);

  struct Open {
    enum Kind { Block, Loop, Function } kind;
    int savedLoopDepth = 0;     // Function: depth to restore on '}'
    int absorbedSingleLoops = 0;  // single-stmt loop levels ending here
  };
  std::vector<Open> stack;
  int loopDepth = 0;
  int pendingSingleLoops = 0;  // entered loops whose body has no braces yet
  bool nextBraceIsLoop = false;

  const std::size_t n = tokens.size();
  std::size_t i = 0;
  while (i < n) {
    const Token& tok = tokens[i];
    info.loopDepth[i] = loopDepth;

    if (isIdent(tok) && (tok.text == "for" || tok.text == "while")) {
      // `} while (...)` after a do-body is the loop tail, not a new loop.
      const bool doTail =
          tok.text == "while" && i > 0 && tokens[i - 1].text == "}";
      if (i + 1 < n && tokens[i + 1].text == "(") {
        const std::size_t close = matchParen(tokens, i + 1);
        // Header tokens carry the *outer* depth.
        for (std::size_t k = i; k <= close && k < n; ++k) {
          info.loopDepth[k] = loopDepth;
        }
        if (close >= n) { i = n; break; }
        i = close + 1;
        if (doTail) continue;
        if (i < n && tokens[i].text == "{") {
          nextBraceIsLoop = true;
        } else if (i < n && tokens[i].text != ";") {
          // Single-statement body: in-loop until the terminating ';'.
          ++loopDepth;
          ++pendingSingleLoops;
        }
        continue;
      }
      ++i;
      continue;
    }
    if (isIdent(tok) && tok.text == "do" && i + 1 < n &&
        tokens[i + 1].text == "{") {
      nextBraceIsLoop = true;
      ++i;
      continue;
    }
    if (tok.text == "{") {
      Open open;
      open.absorbedSingleLoops = pendingSingleLoops;
      pendingSingleLoops = 0;
      const auto fn = bodyIndex.find(i);
      if (nextBraceIsLoop) {
        open.kind = Open::Loop;
        ++loopDepth;
        nextBraceIsLoop = false;
      } else if (fn != bodyIndex.end()) {
        open.kind = Open::Function;
        open.savedLoopDepth = loopDepth;
        loopDepth = 0;
      } else {
        open.kind = Open::Block;
      }
      stack.push_back(open);
      ++i;
      continue;
    }
    if (tok.text == "}") {
      if (!stack.empty()) {
        const Open open = stack.back();
        stack.pop_back();
        if (open.kind == Open::Loop) {
          --loopDepth;
        } else if (open.kind == Open::Function) {
          loopDepth = open.savedLoopDepth;
        }
        loopDepth -= open.absorbedSingleLoops;
        if (loopDepth < 0) loopDepth = 0;
      }
      ++i;
      continue;
    }
    if (tok.text == ";" && pendingSingleLoops > 0) {
      loopDepth -= pendingSingleLoops;
      if (loopDepth < 0) loopDepth = 0;
      pendingSingleLoops = 0;
      ++i;
      continue;
    }
    ++i;
  }
  return info;
}

bool hotPath(const std::string& normalizedPath) {
  return pathHas(normalizedPath, "/lp/") || pathHas(normalizedPath, "/mip/") ||
         pathHas(normalizedPath, "/tip/") ||
         normalizedPath.rfind("lp/", 0) == 0 ||
         normalizedPath.rfind("mip/", 0) == 0 ||
         normalizedPath.rfind("tip/", 0) == 0;
}

// ---------------------------------------------------------------------------
// Rule helpers

namespace {

/// std containers whose construction allocates (or will, once grown).
const std::set<std::string>& stdContainers() {
  static const std::set<std::string> kContainers = {
      "vector", "string",        "deque",         "list",
      "map",    "multimap",      "unordered_map", "set",
      "multiset", "unordered_set", "queue",       "priority_queue",
      "stack"};
  return kContainers;
}

/// Project model/view structs that own heap storage — copying one inside a
/// loop is a hidden allocation.
const std::set<std::string>& heavyProjectTypes() {
  static const std::set<std::string> kHeavy = {
      "ResourceProfile", "Schedule",  "LpModel",       "MipModel",
      "TipInstance",     "MachineHistory", "StepSnapshot", "StudyRow",
      "TimIndexedModel", "LpResult", "MipResult"};
  return kHeavy;
}

/// A pure value chain: identifiers joined by . / -> / :: with optional
/// [index] subscripts — i.e. a copy source, not a function call.
bool isIdentChain(const std::vector<Token>& tokens, std::size_t begin,
                  std::size_t end) {
  if (begin >= end) return false;
  bool sawIdent = false;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = tokens[i];
    if (isIdent(t) || t.kind == Kind::Number) {
      sawIdent = true;
      continue;
    }
    if (t.text == "." || t.text == "->" || t.text == "::" ||
        t.text == "[" || t.text == "]" || t.text == "*") {
      continue;  // '*' allows `*it` dereference copies
    }
    return false;
  }
  return sawIdent;
}

/// Steps back from a type token over decl-specifiers; true if any of them
/// makes the declaration non-per-iteration (static / constexpr / ...).
bool hasStaticSpecifier(const std::vector<Token>& tokens, std::size_t typeAt) {
  std::size_t i = typeAt;
  // `std :: vector` — step back over the qualification first.
  while (i >= 2 && tokens[i - 1].text == "::" && isIdent(tokens[i - 2])) {
    i -= 2;
  }
  while (i > 0) {
    const Token& prev = tokens[i - 1];
    if (!isIdent(prev)) break;
    if (prev.text == "static" || prev.text == "constexpr" ||
        prev.text == "thread_local") {
      return true;
    }
    if (prev.text == "const" || prev.text == "inline" ||
        prev.text == "mutable") {
      --i;
      continue;
    }
    break;
  }
  return false;
}

struct Decl {
  std::string type;       // last type identifier ("vector", "Schedule", ...)
  std::size_t typeIndex;  // token index of that identifier
  std::size_t nameIndex;  // token index of the declared variable
  std::size_t initBegin;  // first token after '=' or '(' (0 when none)
  std::size_t initEnd;    // matching ';' or ')' (exclusive)
  char initKind;          // '=', '(', '{', or 0 for plain `T x;`
};

/// Tries to parse a variable declaration starting at the type identifier
/// `i`. Returns false for references, pointers, usages, and non-decl shapes.
bool parseDecl(const std::vector<Token>& tokens, std::size_t i, Decl& out) {
  const std::size_t n = tokens.size();
  std::size_t j = i + 1;
  if (j < n && tokens[j].text == "<") {
    const std::size_t past = skipTemplateArgs(tokens, j);
    if (past == j) return false;  // comparison, not a template
    j = past;
  }
  if (j >= n) return false;
  if (tokens[j].text == "&" || tokens[j].text == "&&" ||
      tokens[j].text == "*") {
    return false;  // reference/pointer declaration — no allocation
  }
  if (!isIdent(tokens[j])) return false;
  if (keywordSet().count(tokens[j].text) > 0) return false;
  out.type = tokens[i].text;
  out.typeIndex = i;
  out.nameIndex = j;
  out.initBegin = 0;
  out.initEnd = 0;
  out.initKind = 0;
  if (j + 1 >= n) return false;
  const std::string& after = tokens[j + 1].text;
  if (after == ";") return true;
  if (after == "=") {
    out.initKind = '=';
    out.initBegin = j + 2;
    std::size_t k = j + 2;
    int paren = 0;
    while (k < n && (paren > 0 || tokens[k].text != ";")) {
      if (tokens[k].text == "(" || tokens[k].text == "{") ++paren;
      if (tokens[k].text == ")" || tokens[k].text == "}") --paren;
      ++k;
    }
    out.initEnd = k;
    return true;
  }
  if (after == "(") {
    const std::size_t close = matchParen(tokens, j + 1);
    if (close == n) return false;
    // `T x(...)` is only a declaration when followed by ';' — otherwise it
    // was a call on a same-named function.
    if (close + 1 < n && tokens[close + 1].text != ";") return false;
    out.initKind = '(';
    out.initBegin = j + 2;
    out.initEnd = close;
    return true;
  }
  if (after == "{") {
    const std::size_t close = matchBrace(tokens, j + 1);
    if (close == n) return false;
    out.initKind = '{';
    out.initBegin = j + 2;
    out.initEnd = close;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// DSL100 — explicit heap allocation inside a loop.

void checkAllocInLoop(const FileLint& lint, const ScopeInfo& scopes) {
  const std::vector<Token>& tokens = lint.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!isIdent(tokens[i]) || scopes.loopDepth[i] <= 0) continue;
    const std::string& t = tokens[i].text;
    if (t == "new") {
      if (i > 0 && tokens[i - 1].text == "operator") continue;
      lint.report("DSL100", tokens[i].line, tokens[i].column,
                  "'new' inside a loop on the hot path — every B&B node / "
                  "simplex iteration pays the allocator; hoist the object "
                  "or use a pooled buffer");
      continue;
    }
    if ((t == "make_unique" || t == "make_shared") &&
        i + 1 < tokens.size() &&
        (tokens[i + 1].text == "<" || tokens[i + 1].text == "(")) {
      lint.report("DSL100", tokens[i].line, tokens[i].column,
                  "std::" + t + " inside a loop on the hot path — hoist "
                  "the allocation out of the iteration or pool it");
    }
  }
}

// ---------------------------------------------------------------------------
// DSL101 / DSL106(decl) — container / heavy object constructed per
// iteration.

void checkContainerDeclInLoop(const FileLint& lint, const ScopeInfo& scopes) {
  const std::vector<Token>& tokens = lint.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!isIdent(tokens[i])) continue;
    const std::string& t = tokens[i].text;
    const bool isStdContainer =
        stdContainers().count(t) > 0 && isStdQualified(tokens, i);
    const bool isSmartPtr =
        (t == "shared_ptr") && isStdQualified(tokens, i);
    const bool isHeavy = heavyProjectTypes().count(t) > 0;
    if (!isStdContainer && !isHeavy && !isSmartPtr) continue;
    Decl decl;
    if (!parseDecl(tokens, i, decl)) continue;
    if (scopes.loopDepth[decl.nameIndex] <= 0) continue;
    if (hasStaticSpecifier(tokens, i)) continue;
    if (isStdContainer) {
      lint.report("DSL101", tokens[i].line, tokens[i].column,
                  "std::" + t + " '" + tokens[decl.nameIndex].text +
                      "' constructed inside a loop on the hot path — "
                      "declare it once outside and clear()/assign() per "
                      "iteration to reuse its capacity");
      continue;
    }
    // Heavy project types and shared_ptr: only per-iteration *copies* fire
    // — construction from a function's return value is elided and often
    // unavoidable.
    const bool copyInit =
        decl.initKind != 0 &&
        isIdentChain(tokens, decl.initBegin, decl.initEnd);
    if (!copyInit) continue;
    if (isSmartPtr) {
      lint.report("DSL106", tokens[i].line, tokens[i].column,
                  "shared_ptr '" + tokens[decl.nameIndex].text +
                      "' copied per iteration — each copy is an atomic "
                      "refcount round-trip; bind a reference (or use the "
                      "raw object) instead");
    } else {
      lint.report("DSL101", tokens[i].line, tokens[i].column,
                  t + " '" + tokens[decl.nameIndex].text +
                      "' copied inside a loop on the hot path — the copy "
                      "reallocates its owned storage every iteration; "
                      "hoist a scratch object and copy-assign into it");
    }
  }
}

// ---------------------------------------------------------------------------
// DSL102 — push_back/emplace_back loops with no reserve anywhere in the
// file. The reserve scan is file-wide on purpose: `order_.reserve(n)` in
// run() covers `order_.push_back(...)` in the dfs() it calls, and a
// narrower scope would demand suppressions for correct code.

void checkPushBackNoReserve(const FileLint& lint, const ScopeInfo& scopes) {
  const std::vector<Token>& tokens = lint.tokens;
  std::set<std::string> reserved;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    if (!isIdent(tokens[i])) continue;
    if (tokens[i].text != "reserve" && tokens[i].text != "resize") continue;
    if (tokens[i - 1].text != "." && tokens[i - 1].text != "->") continue;
    if (!isIdent(tokens[i - 2])) continue;
    reserved.insert(tokens[i - 2].text);
  }
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    if (!isIdent(tokens[i]) || scopes.loopDepth[i] <= 0) continue;
    if (tokens[i].text != "push_back" && tokens[i].text != "emplace_back") {
      continue;
    }
    if (tokens[i - 1].text != "." && tokens[i - 1].text != "->") continue;
    if (!isIdent(tokens[i - 2])) continue;
    const std::string& name = tokens[i - 2].text;
    if (reserved.count(name) > 0) continue;
    lint.report("DSL102", tokens[i].line, tokens[i].column,
                "'" + name + "." + tokens[i].text +
                    "' in a loop with no '" + name +
                    ".reserve(...)' (or resize) anywhere in this file — "
                    "growth reallocations on the hot path; reserve the "
                    "final size up front");
  }
}

// ---------------------------------------------------------------------------
// DSL103 / DSL106(param) — by-value non-trivial parameters in hot-path
// function definitions. Sink parameters that the body std::move()s into
// place are the idiomatic exception and are exempt.

void checkByValueParams(const FileLint& lint, const ScopeInfo& scopes) {
  const std::vector<Token>& tokens = lint.tokens;
  for (const FunctionDef& fn : scopes.functions) {
    if (fn.paramsBegin >= fn.paramsEnd) continue;
    // Split the parameter list on top-level commas.
    std::vector<std::pair<std::size_t, std::size_t>> params;
    std::size_t start = fn.paramsBegin + 1;
    int paren = 0;
    int angle = 0;
    for (std::size_t i = start; i <= fn.paramsEnd; ++i) {
      const std::string& t = tokens[i].text;
      if (i == fn.paramsEnd || (t == "," && paren == 0 && angle <= 0)) {
        if (i > start) params.emplace_back(start, i);
        start = i + 1;
        continue;
      }
      if (t == "(" || t == "[") ++paren;
      else if (t == ")" || t == "]") --paren;
      else if (t == "<") ++angle;
      else if (t == ">") --angle;
      else if (t == ">>") angle -= 2;
    }
    for (const auto& [begin, end] : params) {
      bool byRef = false;
      std::string heavyType;
      bool sharedPtr = false;
      std::size_t defaultAt = end;  // position of '=' (default argument)
      int depth = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const std::string& t = tokens[i].text;
        if (t == "<") ++depth;
        else if (t == ">") --depth;
        else if (t == ">>") depth -= 2;
        if (t == "&" || t == "&&" || t == "*") byRef = true;
        if (t == "=" && depth <= 0 && defaultAt == end) defaultAt = i;
        if (t == "...") byRef = true;  // variadic pack — out of scope
        if (isIdent(tokens[i]) && depth <= 0 && i < defaultAt) {
          if (t == "shared_ptr") sharedPtr = true;
          if (heavyType.empty() &&
              (stdContainers().count(t) > 0 ||
               heavyProjectTypes().count(t) > 0 || t == "function")) {
            heavyType = t;
          }
        }
      }
      if (byRef || (heavyType.empty() && !sharedPtr)) continue;
      // Parameter name: the last top-level identifier before any default.
      std::size_t nameAt = end;
      depth = 0;
      for (std::size_t i = begin; i < defaultAt; ++i) {
        const std::string& t = tokens[i].text;
        if (t == "<") ++depth;
        else if (t == ">") --depth;
        else if (t == ">>") depth -= 2;
        else if (depth <= 0 && isIdent(tokens[i])) nameAt = i;
      }
      if (nameAt == end) continue;
      const std::string& name = tokens[nameAt].text;
      if (stdContainers().count(name) > 0 || name == "shared_ptr" ||
          heavyProjectTypes().count(name) > 0 || name == "function" ||
          name == "std") {
        continue;  // unnamed parameter — the "name" is part of the type
      }
      // Sink exemption: the body moves the parameter into place.
      bool moved = false;
      for (std::size_t i = fn.bodyBegin;
           i + 2 < fn.bodyEnd && !moved; ++i) {
        if (isIdent(tokens[i]) && tokens[i].text == "move" &&
            tokens[i + 1].text == "(" && tokens[i + 2].text == name) {
          moved = true;
        }
      }
      if (moved) continue;
      if (sharedPtr) {
        lint.report("DSL106", tokens[nameAt].line, tokens[nameAt].column,
                    "shared_ptr parameter '" + name + "' taken by value in "
                    "a hot-path definition — the copy is an atomic refcount "
                    "round-trip per call; take a const& (or the raw object)");
      } else {
        lint.report("DSL103", tokens[nameAt].line, tokens[nameAt].column,
                    "parameter '" + name + "' (" + heavyType + ") taken by "
                    "value in a hot-path definition — copies owned storage "
                    "per call; take const& (or move it into place if it is "
                    "a sink)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DSL104 — repeated map lookups with the same literal key in one function.

void checkRepeatedMapLookups(const FileLint& lint, const ScopeInfo& scopes) {
  const std::vector<Token>& tokens = lint.tokens;
  // Names declared as map/unordered_map anywhere in this file (members and
  // locals alike) — restricting to known maps keeps vector indexing out.
  std::set<std::string> mapNames;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!isIdent(tokens[i])) continue;
    const std::string& t = tokens[i].text;
    if (t != "map" && t != "unordered_map" && t != "multimap") continue;
    if (!isStdQualified(tokens, i)) continue;
    Decl decl;
    if (parseDecl(tokens, i, decl)) mapNames.insert(tokens[decl.nameIndex].text);
  }
  if (mapNames.empty()) return;
  for (const FunctionDef& fn : scopes.functions) {
    std::map<std::string, std::size_t> seen;  // "name\tkey" -> first index
    for (std::size_t i = fn.bodyBegin; i + 2 < fn.bodyEnd; ++i) {
      if (!isIdent(tokens[i]) || mapNames.count(tokens[i].text) == 0) {
        continue;
      }
      std::string key;
      if (tokens[i + 1].text == "[" && i + 3 < fn.bodyEnd &&
          tokens[i + 3].text == "]" &&
          (isIdent(tokens[i + 2]) ||
           tokens[i + 2].kind == Kind::Number)) {
        key = tokens[i + 2].text;
      } else if (tokens[i + 1].text == "." && i + 5 < fn.bodyEnd &&
                 tokens[i + 2].text == "at" && tokens[i + 3].text == "(" &&
                 tokens[i + 5].text == ")" &&
                 (isIdent(tokens[i + 4]) ||
                  tokens[i + 4].kind == Kind::Number)) {
        key = tokens[i + 4].text;
      }
      if (key.empty()) continue;
      const std::string id = tokens[i].text + "\t" + key;
      const auto [it, inserted] = seen.emplace(id, i);
      if (inserted) continue;
      lint.report("DSL104", tokens[i].line, tokens[i].column,
                  "repeated lookup '" + tokens[i].text + "[" + key +
                      "]' in one function (first at line " +
                      std::to_string(tokens[it->second].line) +
                      ") — each lookup re-walks the map; hoist a "
                      "reference to the mapped value");
    }
  }
}

// ---------------------------------------------------------------------------
// DSL105 — std::endl anywhere in a hot file; explicit flush inside a loop.

void checkStreamFlush(const FileLint& lint, const ScopeInfo& scopes) {
  const std::vector<Token>& tokens = lint.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!isIdent(tokens[i])) continue;
    const std::string& t = tokens[i].text;
    if (t == "endl" && isStdQualified(tokens, i)) {
      lint.report("DSL105", tokens[i].line, tokens[i].column,
                  "std::endl flushes the stream every use — write '\\n' "
                  "and flush once when the output is complete");
      continue;
    }
    if (t == "flush" && scopes.loopDepth[i] > 0) {
      const bool memberCall =
          i >= 1 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->");
      const bool manipulator = isStdQualified(tokens, i);
      if (memberCall || manipulator) {
        lint.report("DSL105", tokens[i].line, tokens[i].column,
                    "stream flush inside a loop — a syscall per iteration "
                    "on the hot path; flush once after the loop");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DSL107 — heavy containers returned by value from per-node helpers.

bool perNodeName(const std::string& name) {
  static const std::vector<std::string> kMarkers = {
      "node", "child", "candidate", "branch", "bound",
      "dfs",  "separate", "leaf",   "expand", "pivot"};
  const std::string low = lowered(name);
  return std::any_of(kMarkers.begin(), kMarkers.end(),
                     [&](const std::string& m) {
                       return low.find(m) != std::string::npos;
                     });
}

void checkHeavyReturn(const FileLint& lint, const ScopeInfo& scopes) {
  static const std::set<std::string> kHeavyReturn = {
      "vector", "map", "unordered_map", "set", "unordered_set",
      "deque",  "list"};
  const std::vector<Token>& tokens = lint.tokens;
  for (const FunctionDef& fn : scopes.functions) {
    if (fn.lambda || !perNodeName(fn.name)) continue;
    bool heavy = false;
    bool byRef = false;
    for (std::size_t i = fn.returnBegin; i < fn.nameIndex; ++i) {
      if (isIdent(tokens[i]) && kHeavyReturn.count(tokens[i].text) > 0) {
        heavy = true;
      }
      if (tokens[i].text == "&" || tokens[i].text == "&&" ||
          tokens[i].text == "*") {
        byRef = true;
      }
    }
    if (!heavy || byRef) continue;
    lint.report("DSL107", tokens[fn.nameIndex].line,
                tokens[fn.nameIndex].column,
                "per-node helper '" + fn.name + "' returns a heavy "
                "container by value — a fresh allocation per B&B node; "
                "fill a caller-owned scratch buffer instead");
  }
}

}  // namespace

void checkPerfRules(const FileLint& lint, const ScopeInfo& scopes) {
  if (!hotPath(lint.path)) return;
  checkAllocInLoop(lint, scopes);
  checkContainerDeclInLoop(lint, scopes);
  checkPushBackNoReserve(lint, scopes);
  checkByValueParams(lint, scopes);
  checkRepeatedMapLookups(lint, scopes);
  checkStreamFlush(lint, scopes);
  checkHeavyReturn(lint, scopes);
}

}  // namespace dynsched::lint::internal
