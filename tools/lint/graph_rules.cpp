// Module-graph analysis (DSL200..DSL207) — the third dynsched-lint layer.
//
// The include-graph pass parses every #include the blanking lexer harvested
// (so directives inside comments or `#if 0` never count), resolves them to
// in-tree files, maps files to modules (the path component after
// "dynsched/", or "tools"), and checks the resulting module digraph against
// the declared layer DAG in tools/lint/layers.txt. On top of the graph it
// runs the boundary rules: undeclared cross-layer includes (DSL200),
// include cycles with the full path printed (DSL201), private-header leaks
// (DSL202), reliance on transitive includes for module-qualified symbols
// (DSL203), and forward-declarable heavy includes (DSL207). The single-file
// header-hygiene rules (DSL204..DSL206) live here too — they share the
// scope classification — but run from lintFile so they need no graph.
//
// Everything is the same deliberate heuristic style as the perf pass: token
// shapes, not a parse tree; each rule only fires on facts the pass is
// confident about, so a miss costs a finding, never a false build break.
#include <algorithm>
#include <cctype>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "lint/internal.hpp"

namespace dynsched::lint {

// Helpers shared by the header rules (internal::) and the graph pass.
namespace {

const std::set<std::string>& cppKeywords() {
  static const std::set<std::string> kWords = {
      "if",       "for",      "while",    "switch",  "catch",    "return",
      "sizeof",   "alignof",  "decltype", "do",      "else",     "case",
      "new",      "delete",   "throw",    "goto",    "default",  "operator",
      "requires", "static_assert",        "const",   "constexpr", "inline",
      "static",   "virtual",  "template", "typename", "class",   "struct",
      "union",    "enum",     "namespace", "using",  "typedef",  "public",
      "private",  "protected", "friend",  "explicit", "noexcept", "override",
      "final",    "mutable",  "extern",   "void",    "bool",     "char",
      "int",      "long",     "short",    "float",   "double",   "unsigned",
      "signed",   "auto",     "true",     "false",   "nullptr",  "this"};
  return kWords;
}

std::vector<std::string> splitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  for (const char c : path) {
    if (c == '/') {
      parts.push_back(part);  // keeps the leading "" of absolute paths
      part.clear();
    } else {
      part.push_back(c);
    }
  }
  parts.push_back(part);
  return parts;
}

}  // namespace

namespace internal {

namespace {
using Kind = Token::Kind;
}  // namespace

bool headerPath(const std::string& normalizedPath) {
  const auto ends = [&](std::string_view suffix) {
    return normalizedPath.size() >= suffix.size() &&
           normalizedPath.compare(normalizedPath.size() - suffix.size(),
                                  suffix.size(), suffix) == 0;
  };
  return ends(".hpp") || ends(".h");
}

std::string moduleOf(const std::string& normalizedPath) {
  const std::vector<std::string> parts = splitPath(normalizedPath);
  for (std::size_t i = 0; i + 2 < parts.size() + 1; ++i) {
    // The component after "dynsched/" names the module — but only when it
    // is a directory, not the file itself ("src/dynsched/core/x.cpp").
    if (parts[i] == "dynsched" && i + 2 < parts.size()) return parts[i + 1];
    if (parts[i] == "tools" && i + 1 < parts.size()) return "tools";
  }
  return "";
}

// ---------------------------------------------------------------------------
// Scope classification shared by DSL204/DSL206: which tokens sit at named-
// namespace scope (not inside a class, enum, function body, anonymous
// namespace, or initializer braces).

namespace {

std::vector<bool> namespaceScopeMask(const std::vector<Token>& tokens,
                                     const ScopeInfo& scopes) {
  std::set<std::size_t> functionBodies;
  for (const FunctionDef& def : scopes.functions) {
    functionBodies.insert(def.bodyBegin);
  }
  enum class Brace { Namespace, Other };
  std::vector<Brace> stack;
  std::size_t depthOther = 0;
  std::vector<bool> mask(tokens.size(), false);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    mask[i] = depthOther == 0;
    const std::string& t = tokens[i].text;
    if (t == "{") {
      Brace kind = Brace::Other;
      if (functionBodies.count(i) == 0) {
        // Scan back to the statement start looking for a `namespace` head.
        // An anonymous namespace (nothing but idents/:: between the keyword
        // and the brace is named; `namespace {` directly is anonymous) gets
        // internal linkage — treat it like a non-namespace scope so the
        // ODR rules stay quiet inside.
        std::size_t j = i;
        bool sawEq = false;
        std::size_t namespaceAt = tokens.size();
        while (j > 0) {
          --j;
          const std::string& p = tokens[j].text;
          if (p == ";" || p == "{" || p == "}") break;
          if (p == "=") sawEq = true;
          if (p == "namespace") {
            namespaceAt = j;
            break;
          }
        }
        if (namespaceAt != tokens.size() && !sawEq) {
          const bool anonymous = namespaceAt + 1 == i;
          if (!anonymous) kind = Brace::Namespace;
        }
      }
      stack.push_back(kind);
      if (kind == Brace::Other) ++depthOther;
    } else if (t == "}") {
      if (!stack.empty()) {
        if (stack.back() == Brace::Other) --depthOther;
        stack.pop_back();
      }
    }
  }
  return mask;
}

/// True when tokens[returnBegin-1] closes a `template <...>` head.
bool templatePrefixed(const std::vector<Token>& tokens,
                      std::size_t returnBegin) {
  if (returnBegin == 0) return false;
  const std::string& prev = tokens[returnBegin - 1].text;
  if (prev != ">" && prev != ">>") return false;
  int depth = prev == ">>" ? 2 : 1;
  std::size_t k = returnBegin - 1;
  while (k > 0 && depth > 0) {
    --k;
    const std::string& t = tokens[k].text;
    if (t == ">") ++depth;
    else if (t == ">>") depth += 2;
    else if (t == "<") --depth;
    else if (t == ";" || t == "{" || t == "}") return false;
  }
  return depth == 0 && k > 0 && tokens[k - 1].text == "template";
}

}  // namespace

void checkHeaderRules(const FileLint& lint, const ScopeInfo& scopes) {
  if (!headerPath(lint.path)) return;
  const std::vector<Token>& tokens = lint.tokens;

  // DSL205 — exactly one #pragma once.
  const std::vector<std::size_t>& pragmas = lint.view.pragmaOnceLines;
  if (pragmas.empty()) {
    lint.report("DSL205", 1, 1,
                "header has no #pragma once — a double inclusion redefines "
                "everything in it; add the guard at the top");
  } else if (pragmas.size() > 1) {
    lint.report("DSL205", pragmas[1], 1,
                "duplicated #pragma once (first at line " +
                    std::to_string(pragmas[0]) + ") — keep exactly one");
  }

  const std::vector<bool> nsScope = namespaceScopeMask(tokens, scopes);

  // DSL206 — using namespace at header scope.
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text == "using" && tokens[i + 1].text == "namespace" &&
        nsScope[i]) {
      lint.report("DSL206", tokens[i].line, tokens[i].column,
                  "using namespace at header scope leaks the whole "
                  "namespace into every includer — qualify names or move "
                  "the directive into a function body");
    }
  }

  // DSL204 — non-inline function definitions at namespace scope.
  // "template" appears here because findFunctions folds a `template <...>`
  // head into the return-type range when the scan reaches it.
  static const std::set<std::string> kInlineLike = {
      "inline", "constexpr", "consteval", "static", "friend", "template"};
  for (const FunctionDef& def : scopes.functions) {
    if (def.lambda) continue;
    if (def.nameIndex >= nsScope.size() || !nsScope[def.nameIndex]) continue;
    bool exempt = templatePrefixed(tokens, def.returnBegin);
    for (std::size_t j = def.returnBegin; !exempt && j < def.nameIndex; ++j) {
      if (tokens[j].kind == Kind::Ident && kInlineLike.count(tokens[j].text)) {
        exempt = true;
      }
    }
    if (exempt) continue;
    lint.report("DSL204", tokens[def.nameIndex].line,
                tokens[def.nameIndex].column,
                "function '" + def.name +
                    "' is defined at namespace scope in a header without "
                    "inline/constexpr — every TU including this header "
                    "defines its own copy (ODR violation); mark it inline "
                    "or move the body to a .cpp");
  }

  // DSL204 — non-inline variable definitions (with initializer) at
  // namespace scope. Statements are token runs between ';'/'{'/'}' with
  // preprocessor-directive lines skipped; the shape `Type name ... = ...;`
  // with no exempting specifier is a definition.
  static const std::set<std::string> kVarExempt = {
      "inline",  "constexpr", "consteval", "constinit", "extern",
      "static",  "using",     "typedef",   "template",  "class",
      "struct",  "enum",      "union",     "namespace", "friend",
      "const",   "static_assert"};
  std::size_t start = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text == "#") {
      const std::size_t directiveLine = tokens[i].line;
      while (i + 1 < tokens.size() && tokens[i + 1].line == directiveLine) {
        ++i;
      }
      start = i + 1;
      continue;
    }
    const std::string& t = tokens[i].text;
    if (t == "{" || t == "}") {
      start = i + 1;
      continue;
    }
    if (t != ";") continue;
    const std::size_t s = start;
    const std::size_t e = i;
    start = i + 1;
    if (s >= e || !nsScope[s]) continue;
    if (tokens[s].kind != Kind::Ident || kVarExempt.count(tokens[s].text)) {
      continue;
    }
    std::size_t eq = e;
    int depth = 0;
    for (std::size_t j = s; j < e; ++j) {
      const std::string& u = tokens[j].text;
      if (u == "(" || u == "[" || u == "{" || u == "<") ++depth;
      if (u == ")" || u == "]" || u == "}" || u == ">") --depth;
      if (u == ">>") depth -= 2;
      if (depth <= 0 && u == "=") {
        eq = j;
        break;
      }
    }
    if (eq == e || eq < s + 2) continue;  // no top-level '=', or no name
    if (eq + 1 < e && (tokens[eq + 1].text == "delete" ||
                       tokens[eq + 1].text == "default")) {
      continue;  // deleted/defaulted function, not a variable
    }
    lint.report("DSL204", tokens[s].line, tokens[s].column,
                "variable defined at namespace scope in a header without "
                "inline/constexpr — each TU gets its own object (ODR "
                "violation, and state silently diverges); mark it inline "
                "constexpr or move it to a .cpp");
  }
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Include-graph pass

namespace {

using internal::FileLint;
using internal::IncludeDirective;
using internal::SourceView;
using internal::Token;
using internal::headerPath;
using internal::jsonEscape;
using internal::moduleOf;

/// Lexically normalizes a /-separated path: folds "." and "..".
std::string normalizeLexical(const std::string& path) {
  std::vector<std::string> out;
  std::string part;
  const bool absolute = !path.empty() && path[0] == '/';
  const auto flush = [&]() {
    if (part.empty() || part == ".") {
      part.clear();
      return;
    }
    if (part == ".." && !out.empty() && out.back() != "..") {
      out.pop_back();
    } else if (!(part == ".." && absolute && out.empty())) {
      out.push_back(part);
    }
    part.clear();
  };
  for (const char c : path) {
    if (c == '/') {
      flush();
    } else {
      part.push_back(c);
    }
  }
  flush();
  std::string joined = absolute ? "/" : "";
  for (std::size_t i = 0; i < out.size(); ++i) {
    joined += (i > 0 ? "/" : "") + out[i];
  }
  return joined;
}

std::string dirOf(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string stemOf(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

struct FileNode {
  std::string path;    // normalized
  std::string module;  // "" = outside the module tree
  bool isHeader = false;
  SourceView view;
  std::vector<Token> tokens;
  /// Per view.includes entry: scanned-file index, or npos when external.
  std::vector<std::size_t> targets;
};

constexpr std::size_t kExternal = static_cast<std::size_t>(-1);

/// Declared layer DAG parsed from tools/lint/layers.txt.
struct Layers {
  bool provided = false;
  std::vector<std::string> order;  // declaration order
  std::map<std::string, std::set<std::string>> deps;
};

Layers parseLayers(std::string_view text, std::vector<std::string>& errors) {
  Layers layers;
  if (text.empty()) return layers;
  layers.provided = true;
  std::size_t lineNo = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    std::string line(text.substr(
        start, end == std::string_view::npos ? text.size() - start
                                             : end - start));
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = internal::trimCopy(line);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      errors.push_back("layers.txt line " + std::to_string(lineNo) +
                       ": expected 'module: dep dep ...'");
      continue;
    }
    const std::string name = internal::trimCopy(line.substr(0, colon));
    if (name.empty()) {
      errors.push_back("layers.txt line " + std::to_string(lineNo) +
                       ": empty module name");
      continue;
    }
    if (layers.deps.count(name) > 0) {
      errors.push_back("layers.txt line " + std::to_string(lineNo) +
                       ": module '" + name + "' declared twice");
      continue;
    }
    layers.order.push_back(name);
    std::set<std::string>& deps = layers.deps[name];
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) {
      if (dep == name) {
        errors.push_back("layers.txt line " + std::to_string(lineNo) +
                         ": module '" + name + "' lists itself");
        continue;
      }
      deps.insert(dep);
    }
  }
  // Every dependency must itself be declared, and the declared graph must
  // be a DAG — the layer contract is meaningless otherwise.
  for (const auto& [name, deps] : layers.deps) {
    for (const std::string& dep : deps) {
      if (layers.deps.count(dep) == 0) {
        errors.push_back("layers.txt: module '" + name +
                         "' depends on undeclared module '" + dep + "'");
      }
    }
  }
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path;
  const std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    path.push_back(node);
    for (const std::string& dep : layers.deps[node]) {
      if (layers.deps.count(dep) == 0) continue;
      if (color[dep] == 1) {
        std::string cycle = dep;
        for (std::size_t i = path.size(); i-- > 0;) {
          cycle += " -> " + path[i];
          if (path[i] == dep) break;
        }
        errors.push_back("layers.txt: declared dependencies form a cycle: " +
                         cycle);
        return false;
      }
      if (color[dep] == 0 && !visit(dep)) return false;
    }
    path.pop_back();
    color[node] = 2;
    return true;
  };
  for (const std::string& name : layers.order) {
    if (color[name] == 0 && !visit(name)) break;
  }
  return layers;
}

/// Shortest cycle through `start` in `adj`, as node indices beginning and
/// ending with `start`; empty when none. Self-loops are length-1 cycles.
std::vector<std::size_t> shortestCycleThrough(
    const std::vector<std::vector<std::size_t>>& adj, std::size_t start) {
  const std::size_t n = adj.size();
  std::vector<std::size_t> prev(n, kExternal);
  std::vector<bool> seen(n, false);
  std::deque<std::size_t> queue;
  for (const std::size_t next : adj[start]) {
    if (next == start) return {start, start};
  }
  queue.push_back(start);
  // BFS from start; the first edge back into start closes a shortest cycle.
  while (!queue.empty()) {
    const std::size_t at = queue.front();
    queue.pop_front();
    for (const std::size_t next : adj[at]) {
      if (next == start) {
        std::vector<std::size_t> cycle = {start};
        for (std::size_t walk = at; walk != start; walk = prev[walk]) {
          cycle.push_back(walk);
        }
        std::reverse(cycle.begin() + 1, cycle.end());
        cycle.push_back(start);
        return cycle;
      }
      if (!seen[next]) {
        seen[next] = true;
        prev[next] = at;
        queue.push_back(next);
      }
    }
  }
  return {};
}

/// Names a header defines (classes) and otherwise exports (enums, aliases,
/// functions, variables, macros). Used by DSL207: an include is forward-
/// declarable only when the includer touches nothing but class names, and
/// each only as a pointer/reference.
struct DefinedNames {
  std::set<std::string> classes;
  std::set<std::string> others;
};

DefinedNames collectDefinedNames(const std::vector<Token>& tokens) {
  DefinedNames names;
  const auto ident = [&](std::size_t i) {
    return i < tokens.size() && tokens[i].kind == Token::Kind::Ident;
  };
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if ((t == "class" || t == "struct" || t == "union") &&
        (i == 0 || tokens[i - 1].text != "enum")) {
      if (ident(i + 1)) {
        const std::string& after =
            i + 2 < tokens.size() ? tokens[i + 2].text : std::string();
        if (after == "{" || after == ":" || after == "final") {
          names.classes.insert(tokens[i + 1].text);
        }
      }
      continue;
    }
    if (t == "enum") {
      std::size_t j = i + 1;
      if (j < tokens.size() &&
          (tokens[j].text == "class" || tokens[j].text == "struct")) {
        ++j;
      }
      if (ident(j)) names.others.insert(tokens[j].text);
      continue;
    }
    if (t == "using" && ident(i + 1) && i + 2 < tokens.size() &&
        tokens[i + 2].text == "=") {
      names.others.insert(tokens[i + 1].text);
      continue;
    }
    if (t == "define" && i > 0 && tokens[i - 1].text == "#" && ident(i + 1)) {
      names.others.insert(tokens[i + 1].text);
      continue;
    }
    if (tokens[i].kind != Token::Kind::Ident) continue;
    if (cppKeywords().count(t) > 0) continue;
    // Function declarations/definitions: `Type name (` — and anything the
    // header assigns at namespace scope: `Type name = ...`.
    if (i > 0 && i + 1 < tokens.size()) {
      const std::string& prev = tokens[i - 1].text;
      const std::string& next = tokens[i + 1].text;
      const bool typeBefore = tokens[i - 1].kind == Token::Kind::Ident ||
                              prev == ">" || prev == "&" || prev == "*" ||
                              prev == "::" || prev == "~";
      if ((next == "(" && typeBefore) || next == "=") {
        names.others.insert(t);
      }
    }
    // ALL_CAPS identifiers are macro-shaped; treat them as exports too.
    if (t.size() >= 2 &&
        std::all_of(t.begin(), t.end(),
                    [](char c) {
                      return (std::isupper(static_cast<unsigned char>(c)) !=
                              0) ||
                             (std::isdigit(static_cast<unsigned char>(c)) !=
                              0) ||
                             c == '_';
                    }) &&
        std::any_of(t.begin(), t.end(), [](char c) {
          return std::isupper(static_cast<unsigned char>(c)) != 0;
        })) {
      names.others.insert(t);
    }
  }
  for (const std::string& name : names.classes) names.others.erase(name);
  return names;
}

/// Namespace component -> module. dynsched modules use their own name as
/// the namespace; the lint tool itself lives in dynsched::lint under the
/// "tools" module.
std::string moduleForNamespace(const std::string& ns,
                               const std::set<std::string>& knownModules) {
  if (ns == "lint") return "tools";
  return knownModules.count(ns) > 0 ? ns : "";
}

}  // namespace

IncludeGraphResult analyzeIncludeGraph(const std::vector<SourceFile>& files,
                                       std::string_view layersText) {
  IncludeGraphResult result;
  const Layers layers = parseLayers(layersText, result.errors);

  // ---- load + resolve -----------------------------------------------------
  std::vector<FileNode> nodes;
  nodes.reserve(files.size());
  std::map<std::string, std::size_t> byPath;
  std::set<std::string> roots;  // prefixes ending in a src/ or tools/ comp
  for (const SourceFile& file : files) {
    FileNode node;
    node.path = normalizeLexical(file.path);
    node.module = moduleOf(node.path);
    node.isHeader = headerPath(node.path);
    node.view = internal::preprocess(file.contents);
    node.tokens = internal::tokenize(node.view.code);
    byPath.emplace(node.path, nodes.size());
    std::string prefix;
    for (const std::string& part : splitPath(node.path)) {
      prefix += part + "/";
      if (part == "src" || part == "tools") roots.insert(prefix);
    }
    nodes.push_back(std::move(node));
  }
  for (FileNode& node : nodes) {
    node.targets.reserve(node.view.includes.size());
    for (const IncludeDirective& inc : node.view.includes) {
      std::size_t target = kExternal;
      if (!inc.angled) {
        const std::string relative =
            normalizeLexical(dirOf(node.path) + "/" + inc.path);
        const auto it = byPath.find(relative);
        if (it != byPath.end()) target = it->second;
      }
      if (target == kExternal) {
        for (const std::string& root : roots) {
          const auto it = byPath.find(normalizeLexical(root + inc.path));
          if (it != byPath.end()) {
            target = it->second;
            break;
          }
        }
      }
      node.targets.push_back(target);
    }
  }

  const auto reporter = [&](const FileNode& node) {
    return FileLint{node.path, node.view, node.tokens, result.findings};
  };

  std::set<std::string> knownModules;
  for (const FileNode& node : nodes) {
    if (!node.module.empty()) knownModules.insert(node.module);
  }
  for (const std::string& name : layers.order) knownModules.insert(name);

  // ---- module graph -------------------------------------------------------
  struct EdgeInfo {
    std::size_t count = 0;
    std::size_t file = kExternal;  // representative directive for anchors
    std::size_t line = 0;
  };
  std::map<std::pair<std::string, std::string>, EdgeInfo> moduleEdges;
  for (std::size_t f = 0; f < nodes.size(); ++f) {
    const FileNode& node = nodes[f];
    for (std::size_t k = 0; k < node.targets.size(); ++k) {
      if (node.targets[k] == kExternal) continue;
      const FileNode& target = nodes[node.targets[k]];
      if (node.module.empty() || target.module.empty() ||
          node.module == target.module) {
        continue;
      }
      EdgeInfo& info = moduleEdges[{node.module, target.module}];
      ++info.count;
      if (info.file == kExternal) {
        info.file = f;
        info.line = node.view.includes[k].line;
      }
    }
  }

  // ---- DSL200: undeclared cross-layer includes ----------------------------
  if (layers.provided) {
    for (std::size_t f = 0; f < nodes.size(); ++f) {
      const FileNode& node = nodes[f];
      if (node.module.empty()) continue;
      const auto declared = layers.deps.find(node.module);
      for (std::size_t k = 0; k < node.targets.size(); ++k) {
        if (node.targets[k] == kExternal) continue;
        const FileNode& target = nodes[node.targets[k]];
        if (target.module.empty() || target.module == node.module) continue;
        if (declared == layers.deps.end()) {
          reporter(node).report(
              "DSL200", node.view.includes[k].line, 1,
              "module '" + node.module +
                  "' is not declared in tools/lint/layers.txt — add a '" +
                  node.module + ": <deps>' line before it grows includes");
          continue;
        }
        if (declared->second.count(target.module) > 0) continue;
        std::string allowed;
        for (const std::string& dep : declared->second) {
          allowed += (allowed.empty() ? "" : ", ") + dep;
        }
        reporter(node).report(
            "DSL200", node.view.includes[k].line, 1,
            "include of '" + node.view.includes[k].path + "' (module '" +
                target.module + "') from module '" + node.module +
                "' is not declared in tools/lint/layers.txt ('" +
                node.module + "' may include: " +
                (allowed.empty() ? "nothing" : allowed) +
                ") — invert the dependency or amend the layer contract");
      }
    }
  }

  // ---- DSL201: cycles, module-level then file-level -----------------------
  {
    std::vector<std::string> moduleList(knownModules.begin(),
                                        knownModules.end());
    std::map<std::string, std::size_t> moduleIndex;
    for (std::size_t i = 0; i < moduleList.size(); ++i) {
      moduleIndex[moduleList[i]] = i;
    }
    std::vector<std::vector<std::size_t>> adj(moduleList.size());
    for (const auto& [edge, info] : moduleEdges) {
      adj[moduleIndex[edge.first]].push_back(moduleIndex[edge.second]);
    }
    for (std::size_t m = 0; m < moduleList.size(); ++m) {
      const std::vector<std::size_t> cycle = shortestCycleThrough(adj, m);
      if (cycle.empty()) continue;
      // Report each cycle once: from its lexicographically-smallest module.
      if (*std::min_element(cycle.begin(), cycle.end()) != m) continue;
      std::string path;
      for (std::size_t i = 0; i < cycle.size(); ++i) {
        path += (i > 0 ? " -> " : "") + moduleList[cycle[i]];
      }
      const EdgeInfo& info =
          moduleEdges.at({moduleList[cycle[0]], moduleList[cycle[1]]});
      reporter(nodes[info.file])
          .report("DSL201", info.line, 1,
                  "module include cycle: " + path +
                      " — break the upward edge (dependency inversion: the "
                      "lower module declares the interface, the higher one "
                      "implements it)");
    }
  }
  {
    std::vector<std::vector<std::size_t>> adj(nodes.size());
    for (std::size_t f = 0; f < nodes.size(); ++f) {
      for (const std::size_t target : nodes[f].targets) {
        if (target != kExternal) adj[f].push_back(target);
      }
    }
    for (std::size_t f = 0; f < nodes.size(); ++f) {
      const std::vector<std::size_t> cycle = shortestCycleThrough(adj, f);
      if (cycle.empty()) continue;
      const auto smallest = [&](std::size_t a, std::size_t b) {
        return nodes[a].path < nodes[b].path;
      };
      if (*std::min_element(cycle.begin(), cycle.end(), smallest) != f) {
        continue;
      }
      const FileNode& node = nodes[f];
      std::size_t line = 1;
      for (std::size_t k = 0; k < node.targets.size(); ++k) {
        if (node.targets[k] == cycle[1]) {
          line = node.view.includes[k].line;
          break;
        }
      }
      std::string path;
      for (std::size_t i = 0; i < cycle.size(); ++i) {
        path += (i > 0 ? " -> " : "") + nodes[cycle[i]].path;
      }
      reporter(node).report(
          "DSL201", line, 1,
          cycle.size() == 2
              ? "header includes itself: " + path
              : "file include cycle: " + path +
                    " — hoist the shared declarations into a header both "
                    "sides can include");
    }
  }

  // ---- DSL202: private headers included across module boundaries ----------
  for (const FileNode& node : nodes) {
    for (std::size_t k = 0; k < node.targets.size(); ++k) {
      if (node.targets[k] == kExternal) continue;
      const FileNode& target = nodes[node.targets[k]];
      if (node.module.empty() || target.module.empty() ||
          node.module == target.module) {
        continue;
      }
      const std::vector<std::string> parts = splitPath(target.path);
      const std::string& name = parts.back();
      const bool isPrivate =
          std::find(parts.begin(), parts.end(), "detail") != parts.end() ||
          name == "internal.hpp" || name == "internal.h" ||
          name.find("_internal.") != std::string::npos;
      if (!isPrivate) continue;
      reporter(node).report(
          "DSL202", node.view.includes[k].line, 1,
          "'" + node.view.includes[k].path + "' is a private header of "
              "module '" + target.module + "' (detail/ or internal) — "
              "include the module's public header instead, or promote the "
              "declaration");
    }
  }

  // ---- DSL203: module-qualified symbols without a direct include ----------
  for (std::size_t f = 0; f < nodes.size(); ++f) {
    const FileNode& node = nodes[f];
    if (node.module.empty()) continue;
    std::set<std::string> covered = {node.module};
    for (const std::size_t target : node.targets) {
      if (target != kExternal && !nodes[target].module.empty()) {
        covered.insert(nodes[target].module);
      }
    }
    // A .cpp is covered by its primary header's direct includes too — the
    // header is its interface (standard include-what-you-use exemption).
    if (!node.isHeader) {
      const std::string stem = stemOf(node.path);
      for (const std::size_t target : node.targets) {
        if (target == kExternal) continue;
        const FileNode& header = nodes[target];
        if (!header.isHeader || header.module != node.module ||
            stemOf(header.path) != stem) {
          continue;
        }
        for (const std::size_t deep : header.targets) {
          if (deep != kExternal && !nodes[deep].module.empty()) {
            covered.insert(nodes[deep].module);
          }
        }
      }
    }
    // A forward declaration satisfies the rule (iwyu semantics): opening
    // `namespace dynsched::sim { class Simulator; }` covers sim.
    const std::vector<Token>& tokens = node.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].text != "namespace") continue;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (tokens[j].kind == Token::Kind::Ident) {
          const std::string mod =
              moduleForNamespace(tokens[j].text, knownModules);
          if (!mod.empty()) covered.insert(mod);
        } else if (tokens[j].text != "::") {
          break;
        }
      }
    }
    std::set<std::string> reported;
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::Ident ||
          tokens[i + 1].text != "::" ||
          tokens[i + 2].kind != Token::Kind::Ident) {
        continue;
      }
      if (i > 0 && tokens[i - 1].text == "::") {
        if (i < 2 || tokens[i - 2].text != "dynsched") continue;
      }
      // `namespace dynsched::core {` / `using namespace ...` declare, they
      // do not use — walk the qualifier chain back to its head.
      std::size_t head = i;
      while (head >= 2 && tokens[head - 1].text == "::" &&
             tokens[head - 2].kind == Token::Kind::Ident) {
        head -= 2;
      }
      if (head > 0 && tokens[head - 1].text == "namespace") continue;
      const std::string mod =
          moduleForNamespace(tokens[i].text, knownModules);
      if (mod.empty() || mod == node.module) continue;
      if (covered.count(mod) > 0 || reported.count(mod) > 0) continue;
      reported.insert(mod);
      reporter(node).report(
          "DSL203", tokens[i].line, tokens[i].column,
          "uses " + tokens[i].text + "::" + tokens[i + 2].text +
              " but includes no dynsched/" + mod +
              "/ header directly (relies on a transitive include) — "
              "include what you use");
    }
  }

  // ---- DSL207: forward-declarable heavy includes in headers ---------------
  std::map<std::size_t, DefinedNames> definedCache;
  const auto definedNames = [&](std::size_t index) -> const DefinedNames& {
    auto it = definedCache.find(index);
    if (it == definedCache.end()) {
      it = definedCache
               .emplace(index, collectDefinedNames(nodes[index].tokens))
               .first;
    }
    return it->second;
  };
  for (const FileNode& node : nodes) {
    if (!node.isHeader) continue;
    for (std::size_t k = 0; k < node.targets.size(); ++k) {
      const std::size_t targetIndex = node.targets[k];
      if (targetIndex == kExternal || node.view.includes[k].conditional) {
        continue;
      }
      const FileNode& target = nodes[targetIndex];
      if (!target.isHeader || target.path == node.path) continue;
      const DefinedNames& defined = definedNames(targetIndex);
      if (defined.classes.empty()) continue;
      bool pointerRefUse = false;
      bool disqualified = false;
      for (std::size_t i = 0; i < node.tokens.size() && !disqualified; ++i) {
        const Token& tok = node.tokens[i];
        if (tok.kind != Token::Kind::Ident) continue;
        if (defined.classes.count(tok.text) > 0) {
          const std::string& prev = i > 0 ? node.tokens[i - 1].text : "";
          if (prev == "class" || prev == "struct") continue;  // fwd decl
          const std::string& next =
              i + 1 < node.tokens.size() ? node.tokens[i + 1].text : "";
          if (next == "*" || next == "&" || next == "&&") {
            pointerRefUse = true;
          } else {
            disqualified = true;  // by value, base class, X::member, ...
          }
        } else if (defined.others.count(tok.text) > 0) {
          disqualified = true;  // touches a function/enum/alias/macro too
        }
      }
      if (!pointerRefUse || disqualified) continue;
      reporter(node).report(
          "DSL207", node.view.includes[k].line, 1,
          "'" + node.view.includes[k].path + "' is only needed for "
              "pointer/reference uses of its types here — forward-declare "
              "them and move the include into the consuming .cpp");
    }
  }

  // ---- resolved module graph ---------------------------------------------
  {
    std::set<std::string> inOrder;
    for (const std::string& name : layers.order) {
      result.graph.modules.push_back(name);
      inOrder.insert(name);
    }
    for (const std::string& name : knownModules) {
      if (inOrder.count(name) == 0) result.graph.modules.push_back(name);
    }
    for (const std::string& name : result.graph.modules) {
      result.graph.moduleFiles[name];  // modules with no files still render
      const auto it = layers.deps.find(name);
      if (it != layers.deps.end()) {
        result.graph.declaredDeps[name] =
            std::vector<std::string>(it->second.begin(), it->second.end());
      }
    }
    for (const FileNode& node : nodes) {
      if (!node.module.empty()) {
        result.graph.moduleFiles[node.module].push_back(node.path);
      }
    }
    for (auto& [name, list] : result.graph.moduleFiles) {
      std::sort(list.begin(), list.end());
    }
    for (const auto& [edge, info] : moduleEdges) {
      ModuleEdge out;
      out.from = edge.first;
      out.to = edge.second;
      out.includeCount = info.count;
      const auto it = layers.deps.find(edge.first);
      out.declared = !layers.provided ||
                     (it != layers.deps.end() && it->second.count(edge.second));
      result.graph.edges.push_back(std::move(out));
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

std::string renderGraphJson(const ModuleGraph& graph) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"dynsched-lint\",\n  \"graph\": \"modules\",\n"
     << "  \"version\": 1,\n  \"modules\": [";
  for (std::size_t i = 0; i < graph.modules.size(); ++i) {
    const std::string& name = graph.modules[i];
    os << (i > 0 ? "," : "") << "\n    {\"name\": \"" << jsonEscape(name)
       << "\", \"files\": [";
    const auto files = graph.moduleFiles.find(name);
    if (files != graph.moduleFiles.end()) {
      for (std::size_t j = 0; j < files->second.size(); ++j) {
        os << (j > 0 ? ", " : "") << '"' << jsonEscape(files->second[j])
           << '"';
      }
    }
    os << "], \"declaredDeps\": [";
    const auto deps = graph.declaredDeps.find(name);
    if (deps != graph.declaredDeps.end()) {
      for (std::size_t j = 0; j < deps->second.size(); ++j) {
        os << (j > 0 ? ", " : "") << '"' << jsonEscape(deps->second[j])
           << '"';
      }
    }
    os << "]}";
  }
  os << (graph.modules.empty() ? "" : "\n  ") << "],\n  \"edges\": [";
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    const ModuleEdge& edge = graph.edges[i];
    os << (i > 0 ? "," : "") << "\n    {\"from\": \"" << jsonEscape(edge.from)
       << "\", \"to\": \"" << jsonEscape(edge.to)
       << "\", \"includes\": " << edge.includeCount << ", \"declared\": "
       << (edge.declared ? "true" : "false") << "}";
  }
  os << (graph.edges.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

std::string renderGraphDot(const ModuleGraph& graph) {
  std::ostringstream os;
  os << "// dynsched module include graph — emitted by dynsched-lint\n"
     << "// solid: declared+used   red: undeclared (DSL200)   dashed: "
        "declared, currently unused\n"
     << "digraph dynsched_modules {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const std::string& name : graph.modules) {
    std::size_t fileCount = 0;
    const auto files = graph.moduleFiles.find(name);
    if (files != graph.moduleFiles.end()) fileCount = files->second.size();
    os << "  \"" << name << "\" [label=\"" << name << "\\n" << fileCount
       << " file" << (fileCount == 1 ? "" : "s") << "\"];\n";
  }
  std::set<std::pair<std::string, std::string>> used;
  for (const ModuleEdge& edge : graph.edges) {
    used.insert({edge.from, edge.to});
    os << "  \"" << edge.from << "\" -> \"" << edge.to << "\" [label=\""
       << edge.includeCount << "\"";
    if (!edge.declared) os << ", color=red, penwidth=2";
    os << "];\n";
  }
  for (const auto& [name, deps] : graph.declaredDeps) {
    for (const std::string& dep : deps) {
      if (used.count({name, dep}) > 0) continue;
      os << "  \"" << name << "\" -> \"" << dep
         << "\" [style=dashed, color=gray];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace dynsched::lint
