// Shared engine internals for dynsched-lint. lint.cpp owns preprocessing,
// tokenizing, the structural DSL00x rules, and rendering; perf_rules.cpp
// builds the scope analysis (loop nesting, function bodies) on top of the
// same token stream and implements the hot-path DSL10x family;
// graph_rules.cpp adds the header-hygiene rules (DSL204..DSL206) and the
// cross-file include-graph pass (DSL200..DSL203, DSL207). Nothing in here
// is public API — tools include lint/lint.hpp.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.hpp"

namespace dynsched::lint::internal {

// ---------------------------------------------------------------------------
// Preprocessed source: comments/literals blanked out, suppressions harvested.

struct Suppression {
  std::set<std::string> rules;
  bool valid = false;   // parsed cleanly with a known ID and a reason
  std::string problem;  // why it is malformed (DSL000 message)
};

/// One #include directive harvested during preprocessing. Directives inside
/// comments never reach the harvester (the lexer is already past them);
/// directives inside an `#if 0` branch are dropped as dead; directives under
/// any other preprocessor conditional are kept but flagged, so the graph
/// pass can treat them as real (conservative) edges.
struct IncludeDirective {
  std::string path;          // as written, between the delimiters
  bool angled = false;       // <...> vs "..."
  bool conditional = false;  // inside a live #if/#ifdef/#ifndef region
  std::size_t line = 0;      // 1-based
};

struct SourceView {
  std::string code;                // literals/comments -> spaces
  std::vector<std::string> lines;  // raw source lines (for snippets)
  std::map<std::size_t, Suppression> suppressions;  // by 1-based line
  std::vector<IncludeDirective> includes;           // in source order
  std::vector<std::size_t> pragmaOnceLines;         // 1-based, in order
};

SourceView preprocess(std::string_view text);

std::string trimCopy(std::string_view text);
std::string lowered(std::string text);
bool pathHas(const std::string& normalized, std::string_view piece);
std::string jsonEscape(const std::string& text);

// ---------------------------------------------------------------------------
// Token stream over the code view.

struct Token {
  enum class Kind { Ident, Number, Punct };
  Kind kind;
  std::string text;
  std::size_t line;    // 1-based
  std::size_t column;  // 1-based
};

std::vector<Token> tokenize(const std::string& code);

bool isStdQualified(const std::vector<Token>& tokens, std::size_t identIndex);

// ---------------------------------------------------------------------------
// Per-file lint context: reporting honours suppressions on the finding line
// or the line directly above.

struct FileLint {
  const std::string& path;  // normalized
  const SourceView& view;
  const std::vector<Token>& tokens;
  std::vector<Finding>& findings;

  void report(const std::string& rule, std::size_t line, std::size_t column,
              std::string message) const {
    for (const std::size_t at : {line, line > 1 ? line - 1 : line}) {
      const auto it = view.suppressions.find(at);
      if (it != view.suppressions.end() && it->second.valid &&
          it->second.rules.count(rule) > 0) {
        return;  // explicitly allowed, with a reason
      }
    }
    Finding finding;
    finding.file = path;
    finding.line = line;
    finding.column = column;
    finding.rule = rule;
    finding.message = std::move(message);
    if (line >= 1 && line <= view.lines.size()) {
      finding.snippet = trimCopy(view.lines[line - 1]);
    }
    findings.push_back(std::move(finding));
  }
};

// ---------------------------------------------------------------------------
// Scope analysis: loop nesting per token plus function-definition records.
// Heuristic (token-level, no parse tree) but conservative: the DSL10x rules
// only consume facts this pass is confident about.

struct FunctionDef {
  std::string name;            // "<lambda>" for lambdas
  std::size_t nameIndex = 0;   // token index of the name (lambdas: the '[')
  std::size_t paramsBegin = 0; // index of '(' (== paramsEnd when absent)
  std::size_t paramsEnd = 0;   // index of the matching ')'
  std::size_t bodyBegin = 0;   // index of the body '{'
  std::size_t bodyEnd = 0;     // index of the matching '}'
  std::size_t returnBegin = 0; // first token of the return type (lambdas: 0)
  bool lambda = false;
};

struct ScopeInfo {
  /// Per token: number of enclosing loops *within the innermost function*
  /// (entering a function or lambda body resets the count — a lambda defined
  /// inside a loop does not make its body "in a loop").
  std::vector<int> loopDepth;
  std::vector<FunctionDef> functions;
};

ScopeInfo analyzeScopes(const std::vector<Token>& tokens);

/// True for the solver hot path: lp/, mip/, tip/ (substring match on the
/// /-normalized path, same convention as DSL005).
bool hotPath(const std::string& normalizedPath);

/// DSL100..DSL107 — perf rules, applied only to hotPath() files.
void checkPerfRules(const FileLint& lint, const ScopeInfo& scopes);

// ---------------------------------------------------------------------------
// Module layer: path -> module mapping shared by the graph pass and rules.

/// True for header files (.hpp/.h) — the DSL204..DSL207 scope.
bool headerPath(const std::string& normalizedPath);

/// Module owning a /-normalized path: the path component directly after a
/// "dynsched/" component ("src/dynsched/core/planner.cpp" -> "core"), or
/// "tools" for anything under a "tools/" component. Empty for paths outside
/// the module tree (tests, benches, fixtures) — those files join the graph
/// as plain nodes but never trigger module-boundary rules.
std::string moduleOf(const std::string& normalizedPath);

/// DSL204..DSL206 — single-file header hygiene, applied to headerPath()
/// files from lintFile (graph context not required).
void checkHeaderRules(const FileLint& lint, const ScopeInfo& scopes);

}  // namespace dynsched::lint::internal
