// dynsched-lint — project-rule linter for the dynsched tree.
//
// A token/line-level scanner (no libclang) that enforces the project rules
// the generic tools cannot express — which primitives are allowed where.
// Generic analyzers know what a data race is; only the project knows that
// every mutex must be a capability-annotated util::Mutex, that threads are
// only spawned by util::ThreadPool, or that files are only written through
// util::atomicWriteFile. Each rule has a stable ID, a structured finding,
// and a suppression syntax:
//
//   // dynsched-lint: allow(DSL004) reason why this raw write is correct
//
// on the offending line or the line directly above. A suppression without a
// reason is itself a finding (DSL000) — "trust me" is not a reason.
//
// Rules (scoping paths are substring matches on /-normalized paths):
//   DSL000  malformed suppression (unknown rule ID or missing reason)
//   DSL001  raw std::mutex / condition_variable / lock types outside
//           util/mutex.hpp — use util::Mutex/MutexLock/CondVar so
//           -Wthread-safety sees the capability
//   DSL002  util::Mutex declared without any DYNSCHED_GUARDED_BY(<name>)
//           field in the same file — a capability that guards nothing
//   DSL003  std::thread / pthread_create outside util/thread_pool — all
//           parallelism goes through the pool (shutdown, draining, joining)
//   DSL004  raw file writes (std::ofstream / fopen) outside
//           util/journal.cpp and lp/mps_writer — route through
//           util::atomicWriteFile (crash-safe temp+rename)
//   DSL005  unchecked * or + between model-size expressions in tip/, lp/,
//           mip/ — route through util::checkedMul/checkedAdd (2^63
//           overflow on width·time·count products is UB)
//   DSL006  rand()/srand()/std:: random machinery outside util/rng —
//           benches must be bit-reproducible across standard libraries
//   DSL007  catch (...) whose handler neither rethrows nor captures the
//           exception (std::current_exception) — errors must not be
//           silently dropped
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace dynsched::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;    ///< 1-based
  std::size_t column = 0;  ///< 1-based
  std::string rule;        ///< "DSL001" ... "DSL007", "DSL000"
  std::string message;
  std::string snippet;     ///< the offending source line, whitespace-trimmed
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Stable rule catalog (for --list-rules and the docs).
const std::vector<RuleInfo>& ruleCatalog();

/// Lints one in-memory file. `path` selects which rules apply (scoping is
/// substring-based on the /-normalized path) and labels the findings.
std::vector<Finding> lintFile(const std::string& path,
                              std::string_view contents);

struct LintResult {
  std::vector<Finding> findings;
  std::size_t filesScanned = 0;
  /// I/O problems (unreadable file, missing path) — distinct from findings;
  /// any entry here makes the run fail with exit 2, not 1.
  std::vector<std::string> errors;
};

/// Lints files and directories (recursively; *.cpp/*.cc/*.hpp/*.h, hidden
/// and build*/ directories skipped). Findings are sorted by file/line.
LintResult lintPaths(const std::vector<std::string>& paths);

/// "file:line:col: RULE: message" lines plus a summary tail.
std::string renderText(const LintResult& result);

/// Machine-readable report: {tool, version, filesScanned, findings: [{file,
/// line, column, rule, message, snippet}], counts: {RULE: n}, total}.
std::string renderJson(const LintResult& result);

}  // namespace dynsched::lint
