// dynsched-lint — project-rule linter for the dynsched tree.
//
// A token-level scanner with a lightweight scope analysis (no libclang) that
// enforces the project rules the generic tools cannot express — which
// primitives are allowed where, and what the solver hot path may allocate.
// Generic analyzers know what a data race is; only the project knows that
// every mutex must be a capability-annotated util::Mutex, that threads are
// only spawned by util::ThreadPool, or that the per-node B&B code must not
// allocate per iteration. Each rule has a stable ID, a structured finding,
// and a suppression syntax:
//
//   // dynsched-lint: allow(DSL004) reason why this raw write is correct
//
// on the offending line or the line directly above. A suppression without a
// reason is itself a finding (DSL000) — "trust me" is not a reason.
//
// Structural rules (scoping paths are substring matches on /-normalized
// paths):
//   DSL000  malformed suppression (unknown rule ID or missing reason)
//   DSL001  raw std::mutex / condition_variable / lock types outside
//           util/mutex.hpp — use util::Mutex/MutexLock/CondVar so
//           -Wthread-safety sees the capability
//   DSL002  util::Mutex declared without any DYNSCHED_GUARDED_BY(<name>)
//           field in the same file — a capability that guards nothing
//   DSL003  std::thread / pthread_create outside util/thread_pool — all
//           parallelism goes through the pool (shutdown, draining, joining)
//   DSL004  raw file writes (std::ofstream / fopen) outside
//           util/journal.cpp and lp/mps_writer — route through
//           util::atomicWriteFile (crash-safe temp+rename)
//   DSL005  unchecked * or + between model-size expressions in tip/, lp/,
//           mip/ — route through util::checkedMul/checkedAdd (2^63
//           overflow on width·time·count products is UB); chains already
//           widened by a static_cast<size_t/int64_t/...> do not fire
//   DSL006  rand()/srand()/std:: random machinery outside util/rng —
//           benches must be bit-reproducible across standard libraries
//   DSL007  catch (...) whose handler neither rethrows nor captures the
//           exception (std::current_exception) — errors must not be
//           silently dropped
//   DSL008  raw socket syscalls (socket/accept/bind/listen/connect/recv/
//           send/recvfrom/sendto) outside src/dynsched/serve/net_* — all
//           network I/O goes through the serve::net RAII wrappers (EINTR
//           handling, poll-bounded reads, fault injection, fd lifetime)
//
// Performance rules (hot path only: files under lp/, mip/, tip/ — the code
// that runs per simplex iteration / per B&B node; see DESIGN.md §8):
//   DSL100  new / make_unique / make_shared inside a loop
//   DSL101  container or heavy model object (ResourceProfile, Schedule,
//           LpModel, ...) constructed inside a loop — hoist and reuse
//   DSL102  push_back/emplace_back in a loop with no reserve()/resize()
//           for that container anywhere in the file
//   DSL103  non-trivial parameter passed by value in a function definition
//           (exempt when the body std::move()s it into place — sink params)
//   DSL104  repeated map operator[]/at() lookups with the same key inside
//           one function — hoist a reference
//   DSL105  std::endl anywhere, or stream flush inside a loop
//   DSL106  shared_ptr copies (by-value param / per-iteration copy)
//   DSL107  heavy container returned by value from a per-node B&B helper
//           (name contains node/child/candidate/branch/dfs/separate/...)
//
// Module-graph rules (include-graph pass over the whole scanned tree; the
// layer DAG lives in tools/lint/layers.txt, see DESIGN.md §9):
//   DSL200  include crossing module layers in a direction layers.txt does
//           not declare (upward or undeclared cross-layer dependency)
//   DSL201  include cycle (module- or file-level), reported with the full
//           cycle path
//   DSL202  private header (a module's detail/ or internal header) included
//           from another module
//   DSL203  module-qualified symbol used without a direct include of any
//           header from that module (include-what-you-use-lite; a .cpp is
//           covered by its primary header's direct includes)
//   DSL204  non-inline function/variable definition at namespace scope in a
//           header (ODR violation once two TUs include it)
//   DSL205  missing or duplicated #pragma once in a header
//   DSL206  using namespace at header scope (leaks into every includer)
//   DSL207  header include whose defined types appear only as pointers or
//           references — forward-declare instead and move the include into
//           the consuming .cpp
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dynsched::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;    ///< 1-based
  std::size_t column = 0;  ///< 1-based
  std::string rule;        ///< "DSL001" ... "DSL207", "DSL000"
  std::string message;
  std::string snippet;     ///< the offending source line, whitespace-trimmed
};

struct RuleInfo {
  const char* id;
  const char* summary;
  /// Where the rule applies ("all files", "hot path (lp/, mip/, tip/)",
  /// "headers", "tree (include graph)") — mirrored by the DESIGN.md tables.
  const char* scope;
  /// Catalog generation that introduced the rule: 1 = DSL00x structural,
  /// 2 = DSL10x hot-path perf, 3 = DSL20x module graph, 4 = serving-layer
  /// structural additions (DSL008).
  int since;
};

/// Stable rule catalog (for --list-rules and the docs).
const std::vector<RuleInfo>& ruleCatalog();

/// Lints one in-memory file. `path` selects which rules apply (scoping is
/// substring-based on the /-normalized path) and labels the findings.
std::vector<Finding> lintFile(const std::string& path,
                              std::string_view contents);

struct LintResult {
  std::vector<Finding> findings;
  std::size_t filesScanned = 0;
  /// I/O problems (unreadable file, missing path) — distinct from findings;
  /// any entry here makes the run fail with exit 2, not 1.
  std::vector<std::string> errors;
};

// ---------------------------------------------------------------------------
// Include-graph pass (DSL200..DSL203, DSL207) and the module graph it
// resolves. Files are mapped to modules by path (the component after
// "dynsched/", or "tools"); quote includes resolve includer-relative first,
// then against the scan roots ("src/", "tools/"); angle includes resolve
// against the roots only; unresolved includes are external and ignored.

/// An in-memory file handed to analyzeIncludeGraph (tests build fixture
/// trees without touching the filesystem).
struct SourceFile {
  std::string path;  ///< /-normalized; selects the module
  std::string contents;
};

struct ModuleEdge {
  std::string from;
  std::string to;
  std::size_t includeCount = 0;  ///< #include directives behind the edge
  bool declared = false;         ///< allowed by layers.txt
};

/// The resolved module-level include graph (for --graph-json/--graph-dot).
struct ModuleGraph {
  /// layers.txt order first, then undeclared modules alphabetically.
  std::vector<std::string> modules;
  std::map<std::string, std::vector<std::string>> moduleFiles;
  /// Declared allowed dependencies per module, from layers.txt.
  std::map<std::string, std::vector<std::string>> declaredDeps;
  std::vector<ModuleEdge> edges;  ///< actual cross-module edges, sorted
};

struct IncludeGraphResult {
  std::vector<Finding> findings;
  ModuleGraph graph;
  /// Malformed layers.txt (bad syntax, unknown dep, cyclic declaration) —
  /// gate errors, not findings: the run exits 2.
  std::vector<std::string> errors;
};

/// Cross-file analysis over a whole tree. `layersText` holds the layers.txt
/// contents; when empty the DSL200 layer gate is off (graph resolution,
/// cycles, and the other rules still run).
IncludeGraphResult analyzeIncludeGraph(const std::vector<SourceFile>& files,
                                       std::string_view layersText);

/// {modules: [{name, files, declaredDeps}], edges: [{from, to, includes,
/// declared}]} — the architecture artifact CI archives.
std::string renderGraphJson(const ModuleGraph& graph);

/// Graphviz digraph: solid = declared+used, red = undeclared (violation),
/// dashed = declared but currently unused.
std::string renderGraphDot(const ModuleGraph& graph);

struct TreeLintOptions {
  /// layers.txt contents ("" = no layer gate).
  std::string layersText;
  /// When non-null, receives the resolved module graph.
  ModuleGraph* graphOut = nullptr;
};

/// Lints files and directories (recursively; *.cpp/*.cc/*.hpp/*.h, hidden
/// and build*/ directories skipped), including the cross-file include-graph
/// pass. Findings are sorted by file/line.
LintResult lintPaths(const std::vector<std::string>& paths);
LintResult lintPaths(const std::vector<std::string>& paths,
                     const TreeLintOptions& options);

/// "file:line:col: RULE: message" lines plus a summary tail.
std::string renderText(const LintResult& result);

/// Machine-readable report: {tool, version, filesScanned, findings: [{file,
/// line, column, rule, message, snippet}], counts: {RULE: n}, total}.
std::string renderJson(const LintResult& result);

/// Serializes the findings as a baseline file: a header line followed by
/// one sorted "rule<TAB>file<TAB>snippet" line per finding. Line numbers
/// are deliberately absent so the record survives unrelated edits.
std::string renderBaseline(const LintResult& result);

struct BaselineResult {
  std::size_t suppressed = 0;      ///< findings matched (and removed)
  std::vector<std::string> stale;  ///< recorded entries that no longer fire
  std::string error;               ///< non-empty: baseline unusable (exit 2)
};

/// Filters result.findings in place against a recorded baseline: findings
/// present in the record (multiset match on rule+file+snippet) are dropped,
/// only new ones remain. Stale entries — recorded findings that no longer
/// fire — are reported so the baseline can be re-recorded smaller.
BaselineResult applyBaseline(LintResult& result,
                             std::string_view baselineText);

}  // namespace dynsched::lint
