#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lint/internal.hpp"

namespace dynsched::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule catalog & path scoping

constexpr const char* kScopeAll = "all files";
constexpr const char* kScopeHot = "hot path (lp/, mip/, tip/)";
constexpr const char* kScopeHeaders = "headers";
constexpr const char* kScopeTree = "tree (include graph)";

const std::vector<RuleInfo> kRules = {
    {"DSL000", "malformed dynsched-lint suppression (unknown rule ID or "
               "missing reason)", kScopeAll, 1},
    {"DSL001", "raw std:: mutex/condition_variable/lock outside util/mutex.hpp"
               " — use the capability-annotated util::Mutex family",
     kScopeAll, 1},
    {"DSL002", "util::Mutex member without a DYNSCHED_GUARDED_BY(<name>) "
               "field in the same file", kScopeAll, 1},
    {"DSL003", "std::thread / pthread_create outside util/thread_pool — all "
               "parallelism goes through util::ThreadPool", kScopeAll, 1},
    {"DSL004", "raw file write (std::ofstream / fopen) outside util/journal "
               "and lp/mps_writer — use util::atomicWriteFile", kScopeAll, 1},
    {"DSL005", "unchecked * or + on model-size expressions in tip//lp//mip/ "
               "— use util::checkedMul / util::checkedAdd", kScopeHot, 1},
    {"DSL006", "rand()/std:: random machinery outside util/rng — streams "
               "must be bit-reproducible", kScopeAll, 1},
    {"DSL007", "catch (...) whose handler never rethrows — the error is "
               "silently dropped", kScopeAll, 1},
    {"DSL008", "raw socket syscall (socket/accept/bind/listen/connect/"
               "recv/send/...) outside src/dynsched/serve/net_* — all "
               "network I/O goes through the serve::net RAII wrappers",
     kScopeAll, 4},
    {"DSL100", "heap allocation inside a loop in a hot-path file (new / "
               "make_unique / make_shared) — hoist or pool the allocation",
     kScopeHot, 2},
    {"DSL101", "container or heavy model object constructed inside a loop in "
               "a hot-path file — hoist the buffer and reuse its capacity",
     kScopeHot, 2},
    {"DSL102", "push_back/emplace_back in a loop with no reserve()/resize() "
               "for that container anywhere in the file", kScopeHot, 2},
    {"DSL103", "non-trivial parameter (vector/string/model struct) passed by "
               "value in a hot-path function definition — take const& (or "
               "move the sink param into place)", kScopeHot, 2},
    {"DSL104", "repeated map operator[]/at() lookups with the same key in "
               "one function — hoist a reference to the mapped value",
     kScopeHot, 2},
    {"DSL105", "std::endl / per-iteration stream flush in a hot-path file — "
               "use '\\n' and flush once at the end", kScopeHot, 2},
    {"DSL106", "shared_ptr copied where a reference suffices (by-value "
               "param or per-iteration copy) — pass const& / use the raw "
               "object", kScopeHot, 2},
    {"DSL107", "heavy container returned by value from a per-node B&B "
               "helper — write into a caller-owned buffer instead",
     kScopeHot, 2},
    {"DSL200", "include crossing module layers in a direction not declared "
               "in tools/lint/layers.txt", kScopeTree, 3},
    {"DSL201", "include cycle (module- or file-level), reported with the "
               "full cycle path", kScopeTree, 3},
    {"DSL202", "private header (detail/ or internal header) included from "
               "another module", kScopeTree, 3},
    {"DSL203", "module-qualified symbol used without a direct include of "
               "any header from that module (include-what-you-use-lite)",
     kScopeTree, 3},
    {"DSL204", "non-inline function/variable definition at namespace scope "
               "in a header — ODR violation once two TUs include it",
     kScopeHeaders, 3},
    {"DSL205", "missing or duplicated #pragma once in a header",
     kScopeHeaders, 3},
    {"DSL206", "using namespace at header scope — leaks into every "
               "includer", kScopeHeaders, 3},
    {"DSL207", "header include whose defined types appear only as "
               "pointers/references — forward-declare and include in the "
               ".cpp instead", kScopeTree, 3},
};

bool knownRule(const std::string& id) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return id == r.id; });
}

std::string normalizePath(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

}  // namespace

namespace internal {

bool pathHas(const std::string& normalized, std::string_view piece) {
  return normalized.find(piece) != std::string::npos;
}

std::string trimCopy(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string lowered(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

}  // namespace internal

namespace {

using internal::FileLint;
using internal::SourceView;
using internal::Suppression;
using internal::Token;
using internal::isStdQualified;
using internal::lowered;
using internal::pathHas;
using internal::trimCopy;

// ---------------------------------------------------------------------------
// Source preprocessing: blank comments and literals out of the "code view"
// (preserving offsets) while harvesting suppression directives from the
// comment text.

/// Parses an allow(RULE-ID[, RULE-ID]) reason directive out of a comment.
void parseDirective(std::string_view comment, std::size_t line,
                    SourceView& view) {
  const std::string_view marker = "dynsched-lint:";
  const std::size_t at = comment.find(marker);
  if (at == std::string_view::npos) return;
  Suppression sup;
  std::string_view rest = comment.substr(at + marker.size());
  const std::string directive = trimCopy(rest);
  const std::string_view allow = "allow(";
  if (directive.compare(0, allow.size(), allow) != 0) {
    sup.problem = "expected 'allow(RULE-ID[, RULE-ID]) reason' after "
                  "'dynsched-lint:'";
    view.suppressions.emplace(line, std::move(sup));
    return;
  }
  const std::size_t close = directive.find(')');
  if (close == std::string::npos) {
    sup.problem = "unterminated allow(...) rule list";
    view.suppressions.emplace(line, std::move(sup));
    return;
  }
  std::stringstream ids(directive.substr(allow.size(), close - allow.size()));
  std::string id;
  while (std::getline(ids, id, ',')) {
    id = trimCopy(id);
    if (!knownRule(id) || id == "DSL000") {
      sup.problem = "unknown rule ID '" + id + "' in allow(...)";
      view.suppressions.emplace(line, std::move(sup));
      return;
    }
    sup.rules.insert(id);
  }
  const std::string reason = trimCopy(directive.substr(close + 1));
  if (sup.rules.empty()) {
    sup.problem = "empty allow(...) rule list";
  } else if (reason.empty()) {
    sup.problem = "missing reason after allow(" +
                  *sup.rules.begin() + (sup.rules.size() > 1 ? ", ..." : "") +
                  ") — say why the rule does not apply";
  } else {
    sup.valid = true;
  }
  view.suppressions.emplace(line, std::move(sup));
}

bool identByte(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// The encoding prefixes that turn a '"' into a raw string literal.
bool rawStringPrefix(std::string_view ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

bool hspace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// Strips line/block comments from a directive tail and trims it; used to
/// decide whether an `#if` expression is literally `0` (a dead branch).
std::string directiveTail(std::string_view text, std::size_t at) {
  std::string out;
  while (at < text.size() && text[at] != '\n') {
    if (text[at] == '/' && at + 1 < text.size() &&
        (text[at + 1] == '/' || text[at + 1] == '*')) {
      break;  // good enough for a one-line directive expression
    }
    out.push_back(text[at]);
    ++at;
  }
  return trimCopy(out);
}

}  // namespace

namespace internal {

SourceView preprocess(std::string_view text) {
  SourceView view;
  {
    // Raw lines, kept verbatim for finding snippets.
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') {
        view.lines.emplace_back(text.substr(start, i - start));
        start = i + 1;
      }
    }
    if (start < text.size()) view.lines.emplace_back(text.substr(start));
  }
  view.code.assign(text.size(), ' ');
  enum class State { Code, LineComment, BlockComment, String, Char };
  State state = State::Code;
  std::size_t line = 1;
  std::size_t lineStart = 0;  // offset of the current line's first byte
  std::size_t commentStartLine = 0;
  std::string comment;
  char prevCode = '\0';  // last non-space code byte (digit-separator check)
  const auto newline = [&](std::size_t at) {
    view.code[at] = '\n';  // newlines survive blanking so token lines hold
    ++line;
    lineStart = at + 1;
  };
  // Preprocessor-conditional nesting; a region is dead when any level is
  // (only a literal `#if 0` makes one — everything else is conservatively
  // live, since the lexer cannot evaluate macros).
  struct Cond {
    bool dead = false;
  };
  std::vector<Cond> conds;
  const auto inDeadRegion = [&]() {
    return std::any_of(conds.begin(), conds.end(),
                       [](const Cond& c) { return c.dead; });
  };
  // Peeks a preprocessor directive starting at text[hash] == '#'. Only
  // called when everything before the '#' on this line is blank (comments
  // are already spaces in the code view, so `/* */ #include` still counts
  // while a '#' inside code or a comment never reaches here). The main
  // state machine keeps running over the same bytes afterwards, so string
  // blanking and offsets stay exact.
  const auto peekDirective = [&](std::size_t hash) {
    std::size_t p = hash + 1;
    while (p < text.size() && hspace(text[p])) ++p;
    std::size_t wordEnd = p;
    while (wordEnd < text.size() && identByte(text[wordEnd])) ++wordEnd;
    const std::string_view word = text.substr(p, wordEnd - p);
    p = wordEnd;
    while (p < text.size() && hspace(text[p])) ++p;
    if (word == "if") {
      conds.push_back({directiveTail(text, p) == "0"});
    } else if (word == "ifdef" || word == "ifndef") {
      conds.push_back({false});
    } else if (word == "elif") {
      if (!conds.empty()) conds.back().dead = directiveTail(text, p) == "0";
    } else if (word == "else") {
      if (!conds.empty()) conds.back().dead = false;
    } else if (word == "endif") {
      if (!conds.empty()) conds.pop_back();
    } else if (word == "pragma") {
      std::size_t onceEnd = p;
      while (onceEnd < text.size() && identByte(text[onceEnd])) ++onceEnd;
      if (text.substr(p, onceEnd - p) == "once" && !inDeadRegion()) {
        view.pragmaOnceLines.push_back(line);
      }
    } else if (word == "include" && p < text.size() && !inDeadRegion()) {
      const char open = text[p];
      const char close = open == '<' ? '>' : '"';
      if (open == '<' || open == '"') {
        const std::size_t end = text.find(close, p + 1);
        if (end != std::string_view::npos &&
            text.find('\n', p + 1) > end) {  // delimiter closes on this line
          IncludeDirective inc;
          inc.path = std::string(text.substr(p + 1, end - p - 1));
          inc.angled = open == '<';
          inc.conditional = !conds.empty();
          inc.line = line;
          view.includes.push_back(std::move(inc));
        }
      }
    }
  };
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '#') {
          bool blankSoFar = true;
          for (std::size_t at = lineStart; at < i; ++at) {
            if (!hspace(view.code[at])) {
              blankSoFar = false;
              break;
            }
          }
          if (blankSoFar) peekDirective(i);
        }
        if (c == '/' && next == '/') {
          state = State::LineComment;
          commentStartLine = line;
          comment.clear();
          i += 2;
          continue;
        }
        if (c == '/' && next == '*') {
          state = State::BlockComment;
          commentStartLine = line;
          comment.clear();
          i += 2;
          continue;
        }
        if (c == '"') {
          // Raw string literal? The identifier immediately before the quote
          // must be exactly an encoding prefix (R, LR, uR, UR, u8R) — a
          // longer identifier (`FOOR"x"`) is macro-pasted code, not raw.
          std::size_t prefixBegin = i;
          while (prefixBegin > 0 && identByte(text[prefixBegin - 1])) {
            --prefixBegin;
          }
          if (rawStringPrefix(text.substr(prefixBegin, i - prefixBegin))) {
            // R"delim( ... )delim" — find the ')delim"' terminator; no
            // escape processing happens inside, and literal newlines are
            // legal (they must survive blanking so line numbers hold).
            std::size_t d = i + 1;
            std::string delim;
            while (d < text.size() && text[d] != '(' && text[d] != '\n' &&
                   text[d] != ')' && text[d] != '\\' && !hspace(text[d]) &&
                   delim.size() <= 16) {
              delim.push_back(text[d]);
              ++d;
            }
            if (d < text.size() && text[d] == '(') {
              const std::string terminator = ")" + delim + "\"";
              const std::size_t at = text.find(terminator, d + 1);
              const std::size_t end = at == std::string_view::npos
                                          ? text.size()
                                          : at + terminator.size();
              for (std::size_t k = prefixBegin; k < end; ++k) {
                if (text[k] == '\n') {
                  newline(k);
                } else {
                  view.code[k] = ' ';  // also blanks the already-copied prefix
                }
              }
              prevCode = '"';
              i = end;
              continue;
            }
            // No '(' after the prefix: not a raw literal after all; fall
            // through and treat the quote as an ordinary string start.
          }
          state = State::String;
          ++i;
          continue;
        }
        if (c == '\'' && !identByte(prevCode)) {
          // A quote after an identifier/digit byte is a digit separator
          // (20'000), not a character literal.
          state = State::Char;
          ++i;
          continue;
        }
        if (c == '\n') {
          newline(i);
        } else {
          view.code[i] = c;
          if (std::isspace(static_cast<unsigned char>(c)) == 0) prevCode = c;
        }
        ++i;
        continue;
      case State::LineComment:
        if (c == '\n') {
          parseDirective(comment, commentStartLine, view);
          state = State::Code;
          prevCode = '\0';
          newline(i);
        } else {
          comment.push_back(c);
        }
        ++i;
        continue;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          parseDirective(comment, commentStartLine, view);
          state = State::Code;
          i += 2;
          continue;
        }
        if (c == '\n') newline(i);
        comment.push_back(c);
        ++i;
        continue;
      case State::String:
        if (c == '\\') {
          if (next == '\n') newline(i + 1);  // line continuation in a string
          i += 2;
          continue;
        }
        if (c == '"') {
          state = State::Code;
          prevCode = '"';
        } else if (c == '\n') {
          newline(i);  // unterminated string: keep line numbers sane
        }
        ++i;
        continue;
      case State::Char:
        if (c == '\\') {
          i += 2;
          continue;
        }
        if (c == '\'') {
          state = State::Code;
          prevCode = '\'';
        } else if (c == '\n') {
          newline(i);
        }
        ++i;
        continue;
    }
  }
  if (state == State::LineComment || state == State::BlockComment) {
    parseDirective(comment, commentStartLine, view);
  }
  return view;
}

// ---------------------------------------------------------------------------
// Tokenizer over the code view

namespace {

bool identStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool identChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t lineStart = 0;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      lineStart = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    const std::size_t column = i - lineStart + 1;
    if (identStart(c)) {
      std::size_t j = i + 1;
      while (j < code.size() && identChar(code[j])) ++j;
      tokens.push_back(
          {Token::Kind::Ident, code.substr(i, j - i), line, column});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < code.size() &&
             (identChar(code[j]) || code[j] == '\'' || code[j] == '.')) {
        ++j;
      }
      tokens.push_back(
          {Token::Kind::Number, code.substr(i, j - i), line, column});
      i = j;
      continue;
    }
    // Multi-character operators that matter here: keep compound assignment
    // and increment forms distinct so plain binary '*'/'+' can be matched.
    static const char* kPairs[] = {"::", "->", "...", "++", "--", "+=", "-=",
                                   "*=", "/=", "<<", ">>", "&&", "||", "=="};
    std::string punct(1, c);
    for (const char* pair : kPairs) {
      const std::size_t len = std::char_traits<char>::length(pair);
      if (code.compare(i, len, pair) == 0) {
        punct = pair;
        break;
      }
    }
    tokens.push_back({Token::Kind::Punct, punct, line, column});
    i += punct.size();
  }
  return tokens;
}

bool isStdQualified(const std::vector<Token>& tokens, std::size_t identIndex) {
  return identIndex >= 2 && tokens[identIndex - 1].text == "::" &&
         tokens[identIndex - 2].text == "std";
}

}  // namespace internal

namespace {

// ---------------------------------------------------------------------------
// Structural rules (DSL00x)

// DSL000 — malformed suppressions are findings in their own right.
void checkSuppressions(const FileLint& lint) {
  for (const auto& [line, sup] : lint.view.suppressions) {
    if (!sup.valid) {
      Finding finding;
      finding.file = lint.path;
      finding.line = line;
      finding.column = 1;
      finding.rule = "DSL000";
      finding.message = "malformed dynsched-lint suppression: " + sup.problem;
      if (line >= 1 && line <= lint.view.lines.size()) {
        finding.snippet = trimCopy(lint.view.lines[line - 1]);
      }
      lint.findings.push_back(std::move(finding));
    }
  }
}

// DSL001 — only the annotated wrappers may touch raw standard sync types.
void checkRawSyncTypes(const FileLint& lint) {
  if (pathHas(lint.path, "util/mutex.hpp") ||
      pathHas(lint.path, "util/thread_annotations.hpp")) {
    return;
  }
  static const std::set<std::string> kTypes = {
      "mutex",          "timed_mutex",    "recursive_mutex",
      "shared_mutex",   "shared_timed_mutex",
      "condition_variable", "condition_variable_any",
      "lock_guard",     "unique_lock",    "scoped_lock", "shared_lock"};
  for (std::size_t i = 0; i < lint.tokens.size(); ++i) {
    const Token& token = lint.tokens[i];
    if (token.kind != Token::Kind::Ident || kTypes.count(token.text) == 0) {
      continue;
    }
    if (!isStdQualified(lint.tokens, i)) continue;
    lint.report("DSL001", token.line, token.column,
                "raw std::" + token.text +
                    "; use the capability-annotated util::Mutex / "
                    "util::MutexLock / util::CondVar (util/mutex.hpp) so "
                    "-Wthread-safety can check the locking discipline");
  }
}

// DSL002 — a declared Mutex must guard something in the same file.
void checkUnguardedMutex(const FileLint& lint) {
  if (pathHas(lint.path, "util/mutex.hpp")) return;
  std::set<std::string> guarded;
  const std::vector<Token>& tokens = lint.tokens;
  for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
    if (tokens[i].text == "DYNSCHED_GUARDED_BY" && tokens[i + 1].text == "(" &&
        tokens[i + 2].kind == Token::Kind::Ident &&
        tokens[i + 3].text == ")") {
      guarded.insert(tokens[i + 2].text);
    }
  }
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text != "Mutex" || tokens[i].kind != Token::Kind::Ident) {
      continue;
    }
    // Declaration shape "Mutex name;" — references, parameters, and the
    // class definition itself all fail this filter.
    if (tokens[i + 1].kind != Token::Kind::Ident ||
        tokens[i + 2].text != ";") {
      continue;
    }
    if (i > 0 && (tokens[i - 1].text == "class" ||
                  tokens[i - 1].text == "struct")) {
      continue;
    }
    const std::string& name = tokens[i + 1].text;
    if (guarded.count(name) > 0) continue;
    lint.report("DSL002", tokens[i].line, tokens[i].column,
                "Mutex '" + name +
                    "' has no DYNSCHED_GUARDED_BY(" + name +
                    ") field in this file; annotate what it guards so "
                    "-Wthread-safety has something to check");
  }
}

// DSL003 — threads are only spawned by the pool.
void checkRawThreads(const FileLint& lint) {
  if (pathHas(lint.path, "util/thread_pool.")) return;
  for (std::size_t i = 0; i < lint.tokens.size(); ++i) {
    const Token& token = lint.tokens[i];
    if (token.kind != Token::Kind::Ident) continue;
    const bool stdThread =
        (token.text == "thread" || token.text == "jthread") &&
        isStdQualified(lint.tokens, i) &&
        // std::thread::hardware_concurrency() is a capability query, not a
        // spawn; std::this_thread is namespace-adjacent but harmless.
        !(i + 2 < lint.tokens.size() && lint.tokens[i + 1].text == "::" &&
          lint.tokens[i + 2].text == "hardware_concurrency");
    const bool pthread = token.text == "pthread_create";
    if (!stdThread && !pthread) continue;
    lint.report("DSL003", token.line, token.column,
                "raw " + std::string(pthread ? "pthread_create" : "std::") +
                    (pthread ? "" : token.text) +
                    " outside util/thread_pool; route parallelism through "
                    "util::ThreadPool (owned shutdown, queue draining, "
                    "joined workers)");
  }
}

// DSL004 — file writes go through the atomic temp+rename path.
void checkRawFileWrites(const FileLint& lint) {
  if (pathHas(lint.path, "util/journal.") ||
      pathHas(lint.path, "lp/mps_writer.")) {
    return;
  }
  for (std::size_t i = 0; i < lint.tokens.size(); ++i) {
    const Token& token = lint.tokens[i];
    if (token.kind != Token::Kind::Ident) continue;
    const bool isOfstream =
        token.text == "ofstream";  // qualified or not — both are raw writes
    const bool isCFile = (token.text == "fopen" || token.text == "freopen") &&
                         i + 1 < lint.tokens.size() &&
                         lint.tokens[i + 1].text == "(";
    if (!isOfstream && !isCFile) continue;
    lint.report("DSL004", token.line, token.column,
                "raw file write via " + token.text +
                    "; route through util::atomicWriteFile (crash-safe "
                    "temp+rename — readers must never see a torn file)");
  }
}

// DSL005 — size products/sums in the model layers must be overflow-checked.
const std::set<std::string>& sizeNames() {
  static const std::set<std::string> kNames = {
      "slots",      "numslots",     "slotcount",  "rows",       "numrows",
      "lprows",     "cols",         "numcols",    "columns",    "numcolumns",
      "lpcolumns",  "vars",         "numvars",    "variables",  "numvariables",
      "entries",    "numentries",   "nnz",        "nonzeros",   "size",
      "count",      "horizon",      "makespan",   "accruntime", "timescale",
      "jobs",       "numjobs",      "estimate",   "width"};
  return kNames;
}

/// Walks a postfix chain backwards from `index` (exclusive) and returns the
/// last-named identifier: `grid.slots()` -> "slots", `a.size()` -> "size",
/// plain `jobs` -> "jobs". Returns "" if the shape is not a value chain.
std::string leftOperandName(const std::vector<Token>& tokens,
                            std::size_t opIndex) {
  if (opIndex == 0) return "";
  std::size_t i = opIndex - 1;
  if (tokens[i].text == ")") {
    int depth = 1;
    while (i > 0 && depth > 0) {
      --i;
      if (tokens[i].text == ")") ++depth;
      if (tokens[i].text == "(") --depth;
    }
    if (depth != 0 || i == 0) return "";
    --i;  // token before '('
  }
  if (tokens[i].kind != Token::Kind::Ident) return "";
  return tokens[i].text;
}

std::string rightOperandName(const std::vector<Token>& tokens,
                             std::size_t opIndex) {
  std::size_t i = opIndex + 1;
  if (i >= tokens.size() || tokens[i].kind != Token::Kind::Ident) return "";
  std::string name = tokens[i].text;
  // Follow a member/scope chain to its last identifier: job.estimate,
  // grid.slots(), lp::numVariables().
  while (i + 2 < tokens.size() &&
         (tokens[i + 1].text == "." || tokens[i + 1].text == "->" ||
          tokens[i + 1].text == "::") &&
         tokens[i + 2].kind == Token::Kind::Ident) {
    i += 2;
    name = tokens[i].text;
  }
  return name;
}

/// True when `closeParen` ends a static_cast<W>(...) group whose target W is
/// a 64-bit-wide (or wider) integer — the widening casts DSL005 asks for.
bool wideningCastEndsAt(const std::vector<Token>& tokens,
                        std::size_t closeParen, std::size_t& castBegin) {
  // Match ')' back to its '('.
  int depth = 1;
  std::size_t open = closeParen;
  while (open > 0 && depth > 0) {
    --open;
    if (tokens[open].text == ")") ++depth;
    if (tokens[open].text == "(") --depth;
  }
  if (depth != 0 || open == 0) return false;
  if (tokens[open - 1].text != ">") return false;
  // Match '>' back to its '<' (tokenizer never merges '>>' here: the cast
  // target is a plain type, and nested templates inside static_cast<> do
  // not appear in size arithmetic).
  int angle = 1;
  std::size_t lt = open - 1;
  while (lt > 0 && angle > 0) {
    --lt;
    if (tokens[lt].text == ">") ++angle;
    if (tokens[lt].text == "<") --angle;
  }
  if (angle != 0 || lt == 0) return false;
  if (tokens[lt - 1].text != "static_cast") return false;
  static const std::set<std::string> kWide = {
      "size_t",   "int64_t",  "uint64_t", "intmax_t", "uintmax_t",
      "ptrdiff_t", "long",    "Time"};
  // Last identifier of the target type ("std :: size_t" -> size_t).
  std::string target;
  for (std::size_t q = lt + 1; q < open - 1; ++q) {
    if (tokens[q].kind == Token::Kind::Ident) target = tokens[q].text;
  }
  if (kWide.count(target) == 0) return false;
  castBegin = lt - 1;
  return true;
}

/// True when the *-/+ chain to the left of `opIndex` (same paren depth)
/// starts with a widening static_cast: in
///   static_cast<std::size_t>(slots) * width + count
/// the '+' must not fire — the whole chain is already evaluated at the
/// cast's width. Walks operand-by-operand leftwards over '*', '+', '-'.
bool leftChainWidened(const std::vector<Token>& tokens, std::size_t opIndex) {
  std::size_t op = opIndex;
  while (op > 0) {
    // Find the start of the operand directly left of tokens[op].
    std::size_t last = op - 1;  // last token of the operand
    std::size_t first = last;
    if (tokens[last].text == ")") {
      std::size_t castBegin = 0;
      if (wideningCastEndsAt(tokens, last, castBegin)) return true;
      int depth = 1;
      while (first > 0 && depth > 0) {
        --first;
        if (tokens[first].text == ")") ++depth;
        if (tokens[first].text == "(") --depth;
      }
      if (depth != 0) return false;
      // Pull in the callee chain: grid.slots() — operand starts at 'grid'.
      while (first > 0) {
        const Token& prev = tokens[first - 1];
        if (prev.kind == Token::Kind::Ident || prev.text == "." ||
            prev.text == "->" || prev.text == "::") {
          --first;
        } else {
          break;
        }
      }
    } else if (tokens[last].kind == Token::Kind::Ident ||
               tokens[last].kind == Token::Kind::Number) {
      while (first > 0) {
        const Token& prev = tokens[first - 1];
        if (prev.kind == Token::Kind::Ident || prev.text == "." ||
            prev.text == "->" || prev.text == "::") {
          --first;
        } else {
          break;
        }
      }
    } else {
      return false;  // not a value operand (unary op, bracket, ...)
    }
    if (first == 0) return false;
    const std::string& before = tokens[first - 1].text;
    if (before == "*" || before == "+" || before == "-") {
      op = first - 1;  // keep walking the chain leftwards
      continue;
    }
    return false;
  }
  return false;
}

void checkUncheckedSizeArith(const FileLint& lint) {
  if (!internal::hotPath(lint.path)) return;
  const std::vector<Token>& tokens = lint.tokens;
  for (std::size_t i = 1; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::Punct ||
        (tokens[i].text != "*" && tokens[i].text != "+")) {
      continue;
    }
    const std::string left = lowered(leftOperandName(tokens, i));
    const std::string right = lowered(rightOperandName(tokens, i));
    if (left.empty() || right.empty()) continue;
    if (sizeNames().count(left) == 0 || sizeNames().count(right) == 0) {
      continue;
    }
    // An operand chain already hoisted to 64-bit width by a static_cast is
    // checked arithmetic's moral equivalent for the narrow-operand case:
    //   static_cast<std::size_t>(slots) * width + count
    // evaluates left-to-right at size_t width — do not fire on the '+'.
    if (leftChainWidened(tokens, i)) continue;
    // Escape hatches the token scan can verify: the expression already
    // routes through checked arithmetic, or is explicitly floating-point.
    const std::size_t line = tokens[i].line;
    bool escaped = false;
    for (std::size_t at = line > 1 ? line - 2 : 0;
         at < line + 1 && at < lint.view.lines.size(); ++at) {
      const std::string& raw = lint.view.lines[at];
      if (raw.find("checkedMul") != std::string::npos ||
          raw.find("checkedAdd") != std::string::npos ||
          raw.find("static_cast<double>") != std::string::npos ||
          raw.find("double") != std::string::npos) {
        escaped = true;
        break;
      }
    }
    if (escaped) continue;
    lint.report("DSL005", tokens[i].line, tokens[i].column,
                "unchecked '" + tokens[i].text + "' between model-size "
                    "expressions ('" + left + "' " + tokens[i].text + " '" +
                    right + "'); integer width*time*count products overflow "
                    "2^63 on large traces — use util::checkedMul / "
                    "util::checkedAdd (util/checked.hpp)");
  }
}

// DSL006 — all randomness flows through the deterministic util::Rng.
void checkRawRandomness(const FileLint& lint) {
  if (pathHas(lint.path, "util/rng.")) return;
  static const std::set<std::string> kStdRandom = {
      "random_device",       "mt19937",
      "mt19937_64",          "default_random_engine",
      "minstd_rand",         "uniform_int_distribution",
      "uniform_real_distribution", "normal_distribution",
      "bernoulli_distribution"};
  for (std::size_t i = 0; i < lint.tokens.size(); ++i) {
    const Token& token = lint.tokens[i];
    if (token.kind != Token::Kind::Ident) continue;
    const bool cRand = (token.text == "rand" || token.text == "srand") &&
                       i + 1 < lint.tokens.size() &&
                       lint.tokens[i + 1].text == "(" &&
                       !(i > 0 && (lint.tokens[i - 1].text == "." ||
                                   lint.tokens[i - 1].text == "->" ||
                                   lint.tokens[i - 1].text == "::"));
    const bool stdRandom =
        kStdRandom.count(token.text) > 0 && isStdQualified(lint.tokens, i);
    if (!cRand && !stdRandom) continue;
    lint.report("DSL006", token.line, token.column,
                "raw randomness (" + token.text +
                    ") outside util/rng; use util::Rng — std:: distribution "
                    "output is implementation-defined, and benches must be "
                    "bit-reproducible everywhere");
  }
}

// DSL008 — network syscalls stay behind the serve::net RAII wrappers.
void checkRawSockets(const FileLint& lint) {
  if (pathHas(lint.path, "serve/net_")) return;
  static const std::set<std::string> kSocketCalls = {
      "socket", "accept", "accept4", "bind",     "listen",
      "connect", "recv",  "send",    "recvfrom", "sendto"};
  for (std::size_t i = 0; i < lint.tokens.size(); ++i) {
    const Token& token = lint.tokens[i];
    if (token.kind != Token::Kind::Ident) continue;
    if (kSocketCalls.count(token.text) == 0) continue;
    // Call position only, and never a member/qualified call — obj.connect()
    // or std::bind() are unrelated; the syscalls are called unqualified.
    if (i + 1 >= lint.tokens.size() || lint.tokens[i + 1].text != "(") {
      continue;
    }
    if (i > 0 && (lint.tokens[i - 1].text == "." ||
                  lint.tokens[i - 1].text == "->")) {
      continue;
    }
    // `ns::connect(` is some wrapper's function; bare `::connect(` is the
    // global-scope syscall itself and must not slip through.
    if (i > 0 && lint.tokens[i - 1].text == "::" &&
        (i >= 2 && lint.tokens[i - 2].kind == Token::Kind::Ident)) {
      continue;
    }
    lint.report("DSL008", token.line, token.column,
                "raw socket syscall (" + token.text +
                    ") outside src/dynsched/serve/net_*; use the serve::net "
                    "RAII wrappers — they own EINTR handling, poll-bounded "
                    "reads, fault injection, and fd lifetime");
  }
}

// DSL007 — a catch-all that never rethrows swallows the error.
void checkCatchAllDrops(const FileLint& lint) {
  const std::vector<Token>& tokens = lint.tokens;
  for (std::size_t i = 0; i + 4 < tokens.size(); ++i) {
    if (tokens[i].text != "catch" || tokens[i + 1].text != "(" ||
        tokens[i + 2].text != "..." || tokens[i + 3].text != ")" ||
        tokens[i + 4].text != "{") {
      continue;
    }
    std::size_t j = i + 5;
    int depth = 1;
    bool rethrows = false;
    for (; j < tokens.size() && depth > 0; ++j) {
      if (tokens[j].text == "{") ++depth;
      if (tokens[j].text == "}") --depth;
      // `throw;` rethrows in place; capturing via std::current_exception()
      // preserves the error for a deferred std::rethrow_exception — both
      // keep the failure alive, which is all this rule demands.
      if (tokens[j].kind == Token::Kind::Ident &&
          (tokens[j].text == "throw" ||
           tokens[j].text == "current_exception" ||
           tokens[j].text == "rethrow_exception")) {
        rethrows = true;
      }
    }
    if (rethrows) continue;
    lint.report("DSL007", tokens[i].line, tokens[i].column,
                "catch (...) whose handler never rethrows — the error is "
                "silently dropped; rethrow after cleanup, or catch a "
                "concrete type and surface a structured failure");
  }
}

}  // namespace

const std::vector<RuleInfo>& ruleCatalog() { return kRules; }

std::vector<Finding> lintFile(const std::string& path,
                              std::string_view contents) {
  const std::string normalized = normalizePath(path);
  const SourceView view = internal::preprocess(contents);
  const std::vector<Token> tokens = internal::tokenize(view.code);
  std::vector<Finding> findings;
  const FileLint lint{normalized, view, tokens, findings};
  checkSuppressions(lint);
  checkRawSyncTypes(lint);
  checkUnguardedMutex(lint);
  checkRawThreads(lint);
  checkRawFileWrites(lint);
  checkUncheckedSizeArith(lint);
  checkRawRandomness(lint);
  checkCatchAllDrops(lint);
  checkRawSockets(lint);
  const internal::ScopeInfo scopes = internal::analyzeScopes(tokens);
  internal::checkPerfRules(lint, scopes);
  internal::checkHeaderRules(lint, scopes);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.column != b.column) return a.column < b.column;
              return a.rule < b.rule;
            });
  return findings;
}

namespace {

bool lintableFile(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

void collectFiles(const std::filesystem::path& root,
                  std::vector<std::filesystem::path>& files,
                  std::vector<std::string>& errors) {
  std::error_code ec;
  if (std::filesystem::is_regular_file(root, ec)) {
    files.push_back(root);
    return;
  }
  if (!std::filesystem::is_directory(root, ec)) {
    errors.push_back("no such file or directory: " + root.string());
    return;
  }
  auto it = std::filesystem::recursive_directory_iterator(
      root, std::filesystem::directory_options::skip_permission_denied, ec);
  if (ec) {
    errors.push_back("cannot walk " + root.string() + ": " + ec.message());
    return;
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (entry.is_directory() &&
        (name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.'))) {
      it.disable_recursion_pending();
      continue;
    }
    if (entry.is_regular_file() && lintableFile(entry.path())) {
      files.push_back(entry.path());
    }
  }
}

}  // namespace

LintResult lintPaths(const std::vector<std::string>& paths) {
  return lintPaths(paths, TreeLintOptions{});
}

LintResult lintPaths(const std::vector<std::string>& paths,
                     const TreeLintOptions& options) {
  LintResult result;
  std::vector<std::filesystem::path> files;
  for (const std::string& path : paths) {
    collectFiles(path, files, result.errors);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      result.errors.push_back("cannot read " + file.string());
      continue;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    ++result.filesScanned;
    sources.push_back({file.generic_string(), contents.str()});
  }
  for (const SourceFile& source : sources) {
    std::vector<Finding> findings = lintFile(source.path, source.contents);
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
  }
  IncludeGraphResult graph = analyzeIncludeGraph(sources, options.layersText);
  result.findings.insert(result.findings.end(),
                         std::make_move_iterator(graph.findings.begin()),
                         std::make_move_iterator(graph.findings.end()));
  result.errors.insert(result.errors.end(),
                       std::make_move_iterator(graph.errors.begin()),
                       std::make_move_iterator(graph.errors.end()));
  if (options.graphOut != nullptr) *options.graphOut = std::move(graph.graph);
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.column != b.column) return a.column < b.column;
              return a.rule < b.rule;
            });
  return result;
}

std::string renderText(const LintResult& result) {
  std::ostringstream os;
  for (const Finding& finding : result.findings) {
    os << finding.file << ':' << finding.line << ':' << finding.column << ": "
       << finding.rule << ": " << finding.message << '\n';
    if (!finding.snippet.empty()) {
      os << "    | " << finding.snippet << '\n';
    }
  }
  for (const std::string& error : result.errors) {
    os << "dynsched-lint: error: " << error << '\n';
  }
  os << "dynsched-lint: " << result.findings.size() << " finding"
     << (result.findings.size() == 1 ? "" : "s") << " in "
     << result.filesScanned << " file"
     << (result.filesScanned == 1 ? "" : "s") << " scanned\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Baseline: a recorded multiset of findings, keyed by rule + file + snippet
// (never the line number — the baseline must survive unrelated edits above
// the finding). Used to land new rule families incrementally: record, then
// report only findings that are not in the record.

namespace {

constexpr std::string_view kBaselineHeader = "# dynsched-lint baseline v1";

std::string baselineKey(const Finding& finding) {
  return finding.rule + "\t" + finding.file + "\t" + finding.snippet;
}

}  // namespace

std::string renderBaseline(const LintResult& result) {
  std::vector<std::string> keys;
  keys.reserve(result.findings.size());
  for (const Finding& finding : result.findings) {
    keys.push_back(baselineKey(finding));
  }
  std::sort(keys.begin(), keys.end());
  std::ostringstream os;
  os << kBaselineHeader << '\n';
  for (const std::string& key : keys) os << key << '\n';
  return os.str();
}

BaselineResult applyBaseline(LintResult& result,
                             std::string_view baselineText) {
  BaselineResult outcome;
  std::map<std::string, std::size_t> allowed;
  std::size_t lineNo = 0;
  std::size_t start = 0;
  bool sawHeader = false;
  while (start <= baselineText.size()) {
    const std::size_t end = baselineText.find('\n', start);
    const std::string_view line = baselineText.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start);
    start = end == std::string_view::npos ? baselineText.size() + 1 : end + 1;
    ++lineNo;
    if (lineNo == 1) {
      if (line != kBaselineHeader) {
        outcome.error = "baseline does not start with '" +
                        std::string(kBaselineHeader) +
                        "' — not a dynsched-lint baseline file";
        return outcome;
      }
      sawHeader = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    if (std::count(line.begin(), line.end(), '\t') != 2) {
      outcome.error = "baseline line " + std::to_string(lineNo) +
                      " is not 'rule<TAB>file<TAB>snippet'";
      return outcome;
    }
    ++allowed[std::string(line)];
  }
  if (!sawHeader) {
    outcome.error = "empty baseline file";
    return outcome;
  }
  std::vector<Finding> fresh;
  for (Finding& finding : result.findings) {
    const auto it = allowed.find(baselineKey(finding));
    if (it != allowed.end() && it->second > 0) {
      --it->second;
      ++outcome.suppressed;
    } else {
      fresh.push_back(std::move(finding));
    }
  }
  result.findings = std::move(fresh);
  for (const auto& [key, count] : allowed) {
    for (std::size_t i = 0; i < count; ++i) outcome.stale.push_back(key);
  }
  return outcome;
}

namespace internal {

std::string jsonEscape(const std::string& text) {
  std::ostringstream os;
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

}  // namespace internal

namespace {
using internal::jsonEscape;
}  // namespace

std::string renderJson(const LintResult& result) {
  std::map<std::string, std::size_t> counts;
  for (const Finding& finding : result.findings) ++counts[finding.rule];
  std::ostringstream os;
  os << "{\n  \"tool\": \"dynsched-lint\",\n  \"version\": 1,\n"
     << "  \"filesScanned\": " << result.filesScanned << ",\n"
     << "  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& finding = result.findings[i];
    os << (i > 0 ? "," : "") << "\n    {\"file\": \""
       << jsonEscape(finding.file) << "\", \"line\": " << finding.line
       << ", \"column\": " << finding.column << ", \"rule\": \""
       << finding.rule << "\", \"message\": \"" << jsonEscape(finding.message)
       << "\", \"snippet\": \"" << jsonEscape(finding.snippet) << "\"}";
  }
  os << (result.findings.empty() ? "" : "\n  ") << "],\n  \"counts\": {";
  std::size_t i = 0;
  for (const auto& [rule, count] : counts) {
    os << (i++ > 0 ? ", " : "") << '"' << rule << "\": " << count;
  }
  os << "},\n  \"errors\": [";
  for (std::size_t j = 0; j < result.errors.size(); ++j) {
    os << (j > 0 ? ", " : "") << '"' << jsonEscape(result.errors[j]) << '"';
  }
  os << "],\n  \"total\": " << result.findings.size() << "\n}\n";
  return os.str();
}

}  // namespace dynsched::lint
