#!/usr/bin/env python3
"""Cross-checks the dynsched-lint rule catalog against DESIGN.md.

Runs `dynsched_lint --list-rules` and requires the rule tables in DESIGN.md
(markdown rows of the form `| DSLxxx | ... |`) to list exactly the catalog:
every shipped rule documented, no documented rule that no longer exists,
and no rule documented twice. The check is deliberately ID-based — the
prose in the tables is allowed to differ from the one-line catalog summary,
but the *set* of rules must never drift.

Usage: lint_rules_check.py <dynsched_lint-binary> [DESIGN.md]
Exit: 0 in sync, 1 drift, 2 the check itself could not run.
"""

import json
import re
import subprocess
import sys


def catalog_ids(lint_binary):
    try:
        out = subprocess.run(
            [lint_binary, "--list-rules"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as err:
        print(f"lint_rules_check: cannot run {lint_binary}: {err}",
              file=sys.stderr)
        sys.exit(2)
    try:
        report = json.loads(out)
        rules = [rule["id"] for rule in report["rules"]]
    except (ValueError, KeyError, TypeError) as err:
        print(f"lint_rules_check: malformed --list-rules output: {err}",
              file=sys.stderr)
        sys.exit(2)
    if not rules:
        print("lint_rules_check: --list-rules reported an empty catalog",
              file=sys.stderr)
        sys.exit(2)
    return rules


def documented_ids(design_path):
    try:
        with open(design_path, encoding="utf-8") as design:
            text = design.read()
    except OSError as err:
        print(f"lint_rules_check: cannot read {design_path}: {err}",
              file=sys.stderr)
        sys.exit(2)
    return re.findall(r"^\|\s*(DSL\d{3})\s*\|", text, flags=re.MULTILINE)


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    catalog = catalog_ids(argv[1])
    documented = documented_ids(argv[2] if len(argv) == 3 else "DESIGN.md")

    problems = []
    for ids, where in ((catalog, "--list-rules"), (documented, "DESIGN.md")):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        if dupes:
            problems.append(f"duplicated in {where}: {', '.join(dupes)}")
    undocumented = sorted(set(catalog) - set(documented))
    if undocumented:
        problems.append(
            "in the catalog but missing from DESIGN.md rule tables: "
            + ", ".join(undocumented))
    stale = sorted(set(documented) - set(catalog))
    if stale:
        problems.append(
            "documented in DESIGN.md but absent from --list-rules: "
            + ", ".join(stale))

    if problems:
        for problem in problems:
            print(f"lint_rules_check: {problem}", file=sys.stderr)
        print("lint_rules_check: rule catalog and DESIGN.md tables have "
              "drifted — update the table (or the catalog) so they match",
              file=sys.stderr)
        return 1
    print(f"lint_rules_check: {len(catalog)} rules in sync with DESIGN.md")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
