#!/usr/bin/env python3
"""Compare a fresh bench_exact_solvers JSON report against the committed
baseline (BENCH_exact.json) and fail on regressions.

Usage: bench_check.py BASELINE CURRENT [--tolerance 0.20]
                                       [--time-tolerance 0.50]
       bench_check.py --serve BASELINE CURRENT [--time-tolerance 0.50]
       bench_check.py --self-test

With --serve the reports come from bench_serve_throughput (BENCH_serve.json)
and the gate switches to the serving-layer invariants:
  * zero errors, server-side and client-side;
  * every issued request reached exactly one final outcome
    (issued == ok + shedFinal + errorsFinal);
  * answer accounting balances (completed == accepted + cacheHits);
  * the shed rate stays under the report's own thresholds.maxShedRate;
  * p99 latency is gated (absolute threshold + growth vs the baseline)
    only when the host block matches — cross-host timings are skipped
    loudly, the invariants above still gate.

What is gated, and why:
  * Deterministic counters (total B&B nodes for the scaled ILP and the order
    B&B, LP rows/columns) must not grow by more than --tolerance relative to
    the baseline. For a pinned scenario and node cap these are
    bit-reproducible on every host, so any growth is a real algorithmic
    regression, not noise. Shrinking is reported as an improvement (rerun
    the baseline to bank it), never failed.
  * Allocation counters (allocCount/allocBytes/peakBytes, schema v2) gate
    the same way when BOTH reports were produced with allocation tracking
    (allocTracking true). A baseline without them (schema v1) is accepted
    with a note; a current report without tracking skips the allocation
    gate loudly.
  * Solution quality (avgScaledLossPct / avgTrueLossPct) must match to a
    tight tolerance — the counters moving is suspicious, the answer moving
    is wrong.
  * Wall-clock seconds are compared only when the host block (cpu count +
    compiler) matches the baseline's, with the looser --time-tolerance;
    cross-host timing comparisons are meaningless and are skipped loudly.

The two reports must come from the same pinned scenario (config block);
comparing different scenarios is a usage error (exit 2), not a pass. All
usage errors — unreadable file, malformed JSON, non-object report, a
schemaVersion newer than this script understands — are reported as one
structured line on stderr (`bench_check: ERROR <what>: <detail>`) with
exit 2, never a traceback.

Exit codes: 0 ok, 1 regression, 2 usage/config mismatch.
"""

import argparse
import json
import sys

COUNTERS = ("ilpNodes", "exactNodes", "lpRows", "lpColumns")
ALLOC_COUNTERS = ("allocCount", "allocBytes", "peakBytes")
VALUES = ("avgScaledLossPct", "avgTrueLossPct")
SECONDS = ("ilpSeconds", "exactSeconds")
VALUE_TOLERANCE = 1e-4  # quality values are deterministic; allow fp dust
MAX_SCHEMA_VERSION = 2  # v1 reports predate the alloc counters


class UsageError(Exception):
    """Structured exit-2 failure: `what` names the stage, `detail` the cause."""

    def __init__(self, what, detail):
        super().__init__(f"{what}: {detail}")
        self.what = what
        self.detail = detail


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise UsageError(f"cannot read {path}", error.strerror or str(error))
    try:
        report = json.loads(text)
    except ValueError as error:
        raise UsageError(f"malformed JSON in {path}", str(error))
    if not isinstance(report, dict):
        raise UsageError(f"malformed report {path}",
                         f"expected a JSON object, got {type(report).__name__}")
    version = report.get("schemaVersion", 1)
    if not isinstance(version, int) or version < 1:
        raise UsageError(f"malformed report {path}",
                         f"schemaVersion must be a positive int, got {version!r}")
    if version > MAX_SCHEMA_VERSION:
        raise UsageError(
            f"unsupported schema in {path}",
            f"schemaVersion {version} is newer than this script "
            f"(max {MAX_SCHEMA_VERSION}); update scripts/bench_check.py")
    return report


def compare(base, cur, tolerance, time_tolerance):
    """Returns (failures, notes); raises UsageError on config mismatch."""
    if base.get("config") != cur.get("config"):
        raise UsageError(
            "config mismatch",
            f"baseline {base.get('config')} vs current {cur.get('config')}; "
            "rerun the bench with the baseline's pinned scenario")

    base_totals = base.get("totals", {})
    cur_totals = cur.get("totals", {})
    failures = []
    notes = []

    if base_totals.get("steps") != cur_totals.get("steps"):
        failures.append(
            f"steps solved changed: {base_totals.get('steps')} -> "
            f"{cur_totals.get('steps')}")

    def gate_counter(key, required):
        old, new = base_totals.get(key), cur_totals.get(key)
        if old is None or new is None:
            if required:
                failures.append(f"{key}: missing from report")
            return
        if old == 0:
            if new != 0:
                failures.append(f"{key}: baseline 0, current {new}")
            return
        rel = (new - old) / old
        line = f"{key}: {old} -> {new} ({rel:+.1%})"
        if rel > tolerance:
            failures.append(line + f" exceeds +{tolerance:.0%}")
        elif rel < -tolerance:
            notes.append(line + " — improvement; rerun scripts/check.sh "
                                "--rebaseline-bench to bank it")
        else:
            notes.append(line)

    for key in COUNTERS:
        gate_counter(key, required=True)

    base_tracked = bool(base.get("allocTracking"))
    cur_tracked = bool(cur.get("allocTracking"))
    if base_tracked and cur_tracked:
        for key in ALLOC_COUNTERS:
            gate_counter(key, required=True)
    elif base_tracked:
        notes.append("current report lacks allocation tracking "
                     "(build with -DDYNSCHED_ALLOC_TRACK=ON) — "
                     "allocation gate skipped")
    elif cur_tracked:
        notes.append("baseline predates allocation tracking — allocation "
                     "counters reported but not gated; rebaseline to arm them")
    else:
        notes.append("allocation tracking off in both reports — "
                     "allocation gate skipped")

    for key in VALUES:
        old, new = base_totals.get(key), cur_totals.get(key)
        if old is None or new is None:
            failures.append(f"{key}: missing from report")
            continue
        if abs(new - old) > VALUE_TOLERANCE * max(1.0, abs(old)):
            failures.append(f"{key}: {old} -> {new} — solution quality moved")
        else:
            notes.append(f"{key}: {old} -> {new}")

    if base.get("host") == cur.get("host"):
        for key in SECONDS:
            old, new = base_totals.get(key), cur_totals.get(key)
            if not old or new is None:
                continue
            rel = (new - old) / old
            line = f"{key}: {old:.2f}s -> {new:.2f}s ({rel:+.1%})"
            if rel > time_tolerance:
                failures.append(line + f" exceeds +{time_tolerance:.0%}")
            else:
                notes.append(line)
    else:
        notes.append(f"host differs ({base.get('host')} vs {cur.get('host')})"
                     " — wall-clock comparison skipped, counters still gate")

    return failures, notes


def serve_compare(base, cur, time_tolerance):
    """Serving-layer gate (--serve). Returns (failures, notes); raises
    UsageError on config/bench mismatch."""
    for report, name in ((base, "baseline"), (cur, "current")):
        if report.get("bench") != "bench_serve_throughput":
            raise UsageError(
                f"wrong bench in {name} report",
                f"expected bench_serve_throughput, got {report.get('bench')!r}")
    if base.get("config") != cur.get("config"):
        raise UsageError(
            "config mismatch",
            f"baseline {base.get('config')} vs current {cur.get('config')}; "
            "rerun the bench with the baseline's pinned scenario")

    totals = cur.get("totals", {})
    thresholds = cur.get("thresholds", {})
    failures = []
    notes = []

    def total(key):
        value = totals.get(key)
        if value is None:
            failures.append(f"{key}: missing from report")
            return 0
        return value

    issued = total("issued")
    ok = total("ok")
    shed_final = total("shedFinal")
    errors_final = total("errorsFinal")
    accepted = total("accepted")
    completed = total("completed")
    cache_hits = total("cacheHits")
    errors = total("errors")

    if errors or errors_final:
        failures.append(
            f"errors: server {errors}, client-final {errors_final} — the "
            "serve path must be error-free")
    if issued != ok + shed_final + errors_final:
        failures.append(
            f"outcome accounting: issued {issued} != ok {ok} + shed "
            f"{shed_final} + errors {errors_final} — a request was dropped "
            "or double-counted")
    else:
        notes.append(f"outcomes: {issued} issued -> {ok} ok, "
                     f"{shed_final} shed, {errors_final} errors")
    if not errors and completed != accepted + cache_hits:
        failures.append(
            f"answer accounting: completed {completed} != accepted "
            f"{accepted} + cacheHits {cache_hits}")
    else:
        notes.append(f"answers: {accepted} solved + {cache_hits} replayed "
                     f"= {completed} completed")

    shed_rate = cur.get("shedRate", 0.0)
    max_shed = thresholds.get("maxShedRate")
    if max_shed is None:
        failures.append("thresholds.maxShedRate: missing from report")
    elif shed_rate > max_shed:
        failures.append(f"shedRate {shed_rate:.3f} exceeds the report's "
                        f"maxShedRate {max_shed:.3f}")
    else:
        notes.append(f"shedRate {shed_rate:.3f} (max {max_shed:.3f})")

    if base.get("host") == cur.get("host"):
        p99 = cur.get("latency", {}).get("p99Ms", 0.0)
        base_p99 = base.get("latency", {}).get("p99Ms", 0.0)
        max_p99 = thresholds.get("maxP99Ms")
        if max_p99 is not None and p99 > max_p99:
            failures.append(f"p99 {p99:.1f}ms exceeds maxP99Ms {max_p99:.1f}ms")
        elif base_p99 and (p99 - base_p99) / base_p99 > time_tolerance:
            failures.append(
                f"p99 {base_p99:.1f}ms -> {p99:.1f}ms exceeds "
                f"+{time_tolerance:.0%}")
        else:
            notes.append(f"p99 {base_p99:.1f}ms -> {p99:.1f}ms")
    else:
        notes.append(f"host differs ({base.get('host')} vs {cur.get('host')})"
                     " — latency gate skipped, invariants still gate")

    return failures, notes


# --- self-test ---------------------------------------------------------------

def _report(counters=None, alloc=None, config="pinned", host="h1",
            schema=None, tracking=None):
    totals = {"steps": 3, "ilpNodes": 100, "exactNodes": 50, "lpRows": 10,
              "lpColumns": 20, "avgScaledLossPct": 0.5, "avgTrueLossPct": 0.25,
              "ilpSeconds": 1.0, "exactSeconds": 2.0}
    totals.update(counters or {})
    report = {"config": config, "host": host, "totals": totals}
    if alloc is not None:
        report["allocTracking"] = True
        totals.update(alloc)
    if tracking is not None:
        report["allocTracking"] = tracking
    if schema is not None:
        report["schemaVersion"] = schema
    return report


def _serve_report(totals=None, shed_rate=0.0, p99=500.0, host="h1",
                  thresholds=None):
    base_totals = {"issued": 30, "ok": 30, "shedFinal": 0, "errorsFinal": 0,
                   "accepted": 15, "completed": 30, "cacheHits": 15,
                   "shed": 2, "errors": 0, "seconds": 10.0,
                   "requestsPerSecond": 3.0}
    base_totals.update(totals or {})
    return {"bench": "bench_serve_throughput", "schemaVersion": 1,
            "config": {"requests": 30}, "host": host, "totals": base_totals,
            "latency": {"p50Ms": 100.0, "p99Ms": p99},
            "rungHistogram": [15, 0, 0, 0], "shedRate": shed_rate,
            "thresholds": thresholds or {"maxShedRate": 0.25,
                                         "maxP99Ms": 60000}}


def self_test():
    import copy
    import os
    import tempfile

    checks = []

    def check(name, condition):
        status = "PASSED" if condition else "FAILED"
        checks.append((name, condition))
        print(f"bench_check self-test: {name} ... {status}")

    base = _report()
    check("identical reports pass",
          compare(base, copy.deepcopy(base), 0.20, 0.50)[0] == [])

    grown = _report(counters={"ilpNodes": 130})
    check("counter growth past tolerance fails",
          any("ilpNodes" in f for f in compare(base, grown, 0.20, 0.50)[0]))

    shrunk = _report(counters={"ilpNodes": 50})
    failures, notes = compare(base, shrunk, 0.20, 0.50)
    check("counter shrink is an improvement note, not a failure",
          failures == [] and any("improvement" in n for n in notes))

    alloc_base = _report(alloc={"allocCount": 1000, "allocBytes": 8000,
                                "peakBytes": 4000}, schema=2)
    alloc_grown = _report(alloc={"allocCount": 1300, "allocBytes": 8000,
                                 "peakBytes": 4000}, schema=2)
    check("allocCount growth past tolerance fails",
          any("allocCount" in f
              for f in compare(alloc_base, alloc_grown, 0.20, 0.50)[0]))

    untracked = _report(schema=2, tracking=False)
    failures, notes = compare(alloc_base, untracked, 0.20, 0.50)
    check("untracked current skips the allocation gate with a note",
          failures == [] and any("allocation gate skipped" in n for n in notes))

    failures, notes = compare(base, alloc_grown, 0.20, 0.50)
    check("v1 baseline accepts v2 current without gating allocs",
          failures == [] and any("rebaseline" in n for n in notes))

    moved = _report(counters={"avgTrueLossPct": 0.30})
    check("solution-quality drift fails",
          any("quality moved" in f for f in compare(base, moved, 0.20, 0.50)[0]))

    try:
        compare(base, _report(config="other"), 0.20, 0.50)
        check("config mismatch raises", False)
    except UsageError:
        check("config mismatch raises", True)

    with tempfile.TemporaryDirectory() as tmp:
        missing = os.path.join(tmp, "missing.json")
        try:
            load(missing)
            check("missing file is a structured error", False)
        except UsageError as error:
            check("missing file is a structured error",
                  "cannot read" in error.what)

        bad = os.path.join(tmp, "bad.json")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        try:
            load(bad)
            check("malformed JSON is a structured error", False)
        except UsageError as error:
            check("malformed JSON is a structured error",
                  "malformed JSON" in error.what)

        future = os.path.join(tmp, "future.json")
        with open(future, "w", encoding="utf-8") as handle:
            json.dump(_report(schema=99), handle)
        try:
            load(future)
            check("future schemaVersion is a structured error", False)
        except UsageError as error:
            check("future schemaVersion is a structured error",
                  "unsupported schema" in error.what)

    serve_base = _serve_report()
    check("serve: healthy report passes",
          serve_compare(serve_base, copy.deepcopy(serve_base), 0.50)[0] == [])

    erred = _serve_report(totals={"errors": 1})
    check("serve: server errors fail",
          any("error-free" in f
              for f in serve_compare(serve_base, erred, 0.50)[0]))

    dropped = _serve_report(totals={"ok": 29})
    check("serve: a dropped request fails outcome accounting",
          any("outcome accounting" in f
              for f in serve_compare(serve_base, dropped, 0.50)[0]))

    unbalanced = _serve_report(totals={"cacheHits": 14})
    check("serve: answer accounting imbalance fails",
          any("answer accounting" in f
              for f in serve_compare(serve_base, unbalanced, 0.50)[0]))

    shedding = _serve_report(shed_rate=0.40)
    check("serve: shed rate above threshold fails",
          any("maxShedRate" in f
              for f in serve_compare(serve_base, shedding, 0.50)[0]))

    slow = _serve_report(p99=900.0)
    check("serve: p99 growth on a matching host fails",
          any("p99" in f for f in serve_compare(serve_base, slow, 0.50)[0]))

    other_host = _serve_report(p99=900.0, host="h2")
    failures, notes = serve_compare(serve_base, other_host, 0.50)
    check("serve: host mismatch skips the latency gate with a note",
          failures == [] and any("latency gate skipped" in n for n in notes))

    try:
        serve_compare(serve_base, _report(), 0.50)
        check("serve: a non-serve report raises", False)
    except UsageError:
        check("serve: a non-serve report raises", True)

    failed = [name for name, ok in checks if not ok]
    if failed:
        print(f"bench_check self-test: {len(failed)}/{len(checks)} FAILED",
              file=sys.stderr)
        return 1
    print(f"bench_check self-test: {len(checks)} checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="bench_exact_solvers baseline regression gate")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative counter growth (default 0.20)")
    parser.add_argument("--time-tolerance", type=float, default=0.50,
                        help="allowed relative wall-clock growth on a "
                             "matching host (default 0.50)")
    parser.add_argument("--serve", action="store_true",
                        help="gate bench_serve_throughput reports instead")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in checks and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        print("bench_check: ERROR usage: bench_check.py BASELINE CURRENT "
              "(or --self-test)", file=sys.stderr)
        return 2

    try:
        base = load(args.baseline)
        cur = load(args.current)
        if args.serve:
            failures, notes = serve_compare(base, cur, args.time_tolerance)
        else:
            failures, notes = compare(base, cur, args.tolerance,
                                      args.time_tolerance)
    except UsageError as error:
        print(f"bench_check: ERROR {error.what}: {error.detail}",
              file=sys.stderr)
        return 2

    for note in notes:
        print(f"bench_check: {note}")
    for failure in failures:
        print(f"bench_check: FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print("bench_check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
