#!/usr/bin/env python3
"""Compare a fresh bench_exact_solvers JSON report against the committed
baseline (BENCH_exact.json) and fail on regressions.

Usage: bench_check.py BASELINE CURRENT [--tolerance 0.20]
                                       [--time-tolerance 0.50]

What is gated, and why:
  * Deterministic counters (total B&B nodes for the scaled ILP and the order
    B&B, LP rows/columns) must not grow by more than --tolerance relative to
    the baseline. For a pinned scenario and node cap these are
    bit-reproducible on every host, so any growth is a real algorithmic
    regression, not noise. Shrinking is reported as an improvement (rerun
    the baseline to bank it), never failed.
  * Solution quality (avgScaledLossPct / avgTrueLossPct) must match to a
    tight tolerance — the counters moving is suspicious, the answer moving
    is wrong.
  * Wall-clock seconds are compared only when the host block (cpu count +
    compiler) matches the baseline's, with the looser --time-tolerance;
    cross-host timing comparisons are meaningless and are skipped loudly.

The two reports must come from the same pinned scenario (config block);
comparing different scenarios is a usage error (exit 2), not a pass.

Exit codes: 0 ok, 1 regression, 2 usage/config mismatch.
"""

import argparse
import json
import sys

COUNTERS = ("ilpNodes", "exactNodes", "lpRows", "lpColumns")
VALUES = ("avgScaledLossPct", "avgTrueLossPct")
SECONDS = ("ilpSeconds", "exactSeconds")
VALUE_TOLERANCE = 1e-4  # quality values are deterministic; allow fp dust


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        sys.exit(f"bench_check: cannot read {path}: {error}")


def main():
    parser = argparse.ArgumentParser(
        description="bench_exact_solvers baseline regression gate")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative counter growth (default 0.20)")
    parser.add_argument("--time-tolerance", type=float, default=0.50,
                        help="allowed relative wall-clock growth on a "
                             "matching host (default 0.50)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    if base.get("config") != cur.get("config"):
        print(f"bench_check: config mismatch — baseline {base.get('config')}"
              f" vs current {cur.get('config')}; rerun the bench with the"
              " baseline's pinned scenario", file=sys.stderr)
        return 2

    base_totals = base.get("totals", {})
    cur_totals = cur.get("totals", {})
    failures = []
    notes = []

    if base_totals.get("steps") != cur_totals.get("steps"):
        failures.append(
            f"steps solved changed: {base_totals.get('steps')} -> "
            f"{cur_totals.get('steps')}")

    for key in COUNTERS:
        old, new = base_totals.get(key), cur_totals.get(key)
        if old is None or new is None:
            failures.append(f"{key}: missing from report")
            continue
        if old == 0:
            if new != 0:
                failures.append(f"{key}: baseline 0, current {new}")
            continue
        rel = (new - old) / old
        line = f"{key}: {old} -> {new} ({rel:+.1%})"
        if rel > args.tolerance:
            failures.append(line + f" exceeds +{args.tolerance:.0%}")
        elif rel < -args.tolerance:
            notes.append(line + " — improvement; rerun scripts/check.sh "
                                "--rebaseline-bench to bank it")
        else:
            notes.append(line)

    for key in VALUES:
        old, new = base_totals.get(key), cur_totals.get(key)
        if old is None or new is None:
            failures.append(f"{key}: missing from report")
            continue
        if abs(new - old) > VALUE_TOLERANCE * max(1.0, abs(old)):
            failures.append(f"{key}: {old} -> {new} — solution quality moved")
        else:
            notes.append(f"{key}: {old} -> {new}")

    if base.get("host") == cur.get("host"):
        for key in SECONDS:
            old, new = base_totals.get(key), cur_totals.get(key)
            if not old or new is None:
                continue
            rel = (new - old) / old
            line = f"{key}: {old:.2f}s -> {new:.2f}s ({rel:+.1%})"
            if rel > args.time_tolerance:
                failures.append(line + f" exceeds +{args.time_tolerance:.0%}")
            else:
                notes.append(line)
    else:
        notes.append(f"host differs ({base.get('host')} vs {cur.get('host')})"
                     " — wall-clock comparison skipped, counters still gate")

    for note in notes:
        print(f"bench_check: {note}")
    for failure in failures:
        print(f"bench_check: FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print("bench_check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
