#!/usr/bin/env bash
# Correctness driver: runs the full ctest suite under ASan/UBSan and TSan
# with the schedule audit enabled, and (when clang-tidy is available) builds
# src/ under the curated .clang-tidy gate. Exits non-zero on any failure.
#
# Usage: scripts/check.sh [--jobs N] [--skip asan|tsan|tidy]...
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs) JOBS="$2"; shift 2 ;;
    --skip) SKIP="$SKIP $2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

skip() { [[ " $SKIP " == *" $1 "* ]]; }

# Every audited code path validates its schedules during these runs.
export DYNSCHED_AUDIT=1
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

run_mode() {
  local name="$1"; shift
  local dir="build-$name"
  echo "=== [$name] configure + build ==="
  cmake -B "$dir" -S . -DDYNSCHED_WERROR=ON "$@" > "$dir.cmake.log" 2>&1 || {
    cat "$dir.cmake.log"; return 1;
  }
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

FAILED=""

if ! skip asan; then
  run_mode asan -DDYNSCHED_SANITIZE="address,undefined" || FAILED="$FAILED asan"
fi

if ! skip tsan; then
  run_mode tsan -DDYNSCHED_SANITIZE=thread || FAILED="$FAILED tsan"
fi

if ! skip tidy; then
  if command -v clang-tidy > /dev/null 2>&1; then
    # The analysis gate only needs the library targets; --warnings-as-errors
    # inside DYNSCHED_ANALYZE fails the build on any finding in src/.
    echo "=== [tidy] clang-tidy gate over src/ ==="
    cmake -B build-tidy -S . -DDYNSCHED_ANALYZE=ON > build-tidy.cmake.log 2>&1 \
      || { cat build-tidy.cmake.log; FAILED="$FAILED tidy"; }
    cmake --build build-tidy -j "$JOBS" --target \
        dynsched_util dynsched_trace dynsched_core dynsched_analysis \
        dynsched_lp dynsched_mip dynsched_sim dynsched_tip \
      || FAILED="$FAILED tidy"
  else
    echo "WARNING: clang-tidy not found; skipping the analysis gate" >&2
  fi
fi

if [[ -n "$FAILED" ]]; then
  echo "check.sh FAILED:$FAILED" >&2
  exit 1
fi
echo "check.sh: all modes green"
