#!/usr/bin/env bash
# Correctness driver: runs the full ctest suite under ASan/UBSan and TSan
# with the schedule audit enabled, builds src/ under the curated .clang-tidy
# gate, and fuzzes the parser harnesses for a fixed 30-second budget each.
# Exits non-zero on any failure; missing required tools fail fast instead of
# silently skipping a gate.
#
# Usage: scripts/check.sh [--jobs N] [--skip asan|tsan|tidy|fuzz|faults]...
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FUZZ_SECONDS=30
SKIP=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs) JOBS="$2"; shift 2 ;;
    --skip) SKIP="$SKIP $2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

skip() { [[ " $SKIP " == *" $1 "* ]]; }

# Tool preflight: a gate whose tool is absent must fail loudly, not produce
# a green run that never executed. Opting out is explicit via --skip.
if ! skip tidy && ! command -v clang-tidy > /dev/null 2>&1; then
  echo "check.sh: clang-tidy not found but the tidy gate is enabled." >&2
  echo "  install it (e.g. 'apt-get install clang-tidy') or pass" >&2
  echo "  '--skip tidy' to opt out explicitly." >&2
  exit 2
fi

# Every audited code path validates its schedules during these runs.
export DYNSCHED_AUDIT=1
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

run_mode() {
  local name="$1"; shift
  local dir="build-$name"
  echo "=== [$name] configure + build ==="
  cmake -B "$dir" -S . -DDYNSCHED_WERROR=ON "$@" > "$dir.cmake.log" 2>&1 || {
    cat "$dir.cmake.log"; return 1;
  }
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

FAILED=""

if ! skip asan; then
  run_mode asan -DDYNSCHED_SANITIZE="address,undefined" || FAILED="$FAILED asan"
fi

if ! skip tsan; then
  run_mode tsan -DDYNSCHED_SANITIZE=thread || FAILED="$FAILED tsan"
fi

if ! skip faults; then
  # Fault matrix: each DYNSCHED_FAULTS kind forces a different rung of the
  # supervised degradation ladder; the FaultMatrix suite asserts that the
  # study still completes with a feasible schedule on every step. Runs
  # against the ASan build so a fault-path bug also trips the sanitizers.
  if [[ ! -x build-asan/tests/supervised_test ]]; then
    echo "=== [faults] building supervised_test (asan) ==="
    cmake -B build-asan -S . -DDYNSCHED_WERROR=ON \
        -DDYNSCHED_SANITIZE="address,undefined" > build-asan.cmake.log 2>&1 \
      || { cat build-asan.cmake.log; FAILED="$FAILED faults"; }
    [[ " $FAILED " == *" faults "* ]] \
      || cmake --build build-asan -j "$JOBS" --target supervised_test \
      || FAILED="$FAILED faults"
  fi
  if [[ " $FAILED " != *" faults "* ]]; then
    for fault in deadline-now oom-at-estimate lp-numerical-failure \
                 lp-numerical-failure=1 fail-at-node=1 fail-at-step=0 \
                 fail-at-step=all; do
      echo "=== [faults] DYNSCHED_FAULTS=$fault ==="
      DYNSCHED_FAULTS="$fault" build-asan/tests/supervised_test \
          --gtest_filter='FaultMatrix.*' \
        || { FAILED="$FAILED faults"; break; }
    done
  fi
fi

if ! skip tidy; then
  # The analysis gate only needs the library targets; --warnings-as-errors
  # inside DYNSCHED_ANALYZE fails the build on any finding in src/.
  echo "=== [tidy] clang-tidy gate over src/ ==="
  cmake -B build-tidy -S . -DDYNSCHED_ANALYZE=ON > build-tidy.cmake.log 2>&1 \
    || { cat build-tidy.cmake.log; FAILED="$FAILED tidy"; }
  cmake --build build-tidy -j "$JOBS" --target \
      dynsched_util dynsched_trace dynsched_core dynsched_analysis \
      dynsched_lp dynsched_mip dynsched_sim dynsched_tip \
    || FAILED="$FAILED tidy"
fi

if ! skip fuzz; then
  # Coverage-guided under Clang (libFuzzer); with gcc the harnesses fall
  # back to the blind-mutation replay driver — weaker, but the oracles and
  # sanitizers still run, so say so instead of silently degrading.
  FUZZ_ARGS=(-DDYNSCHED_FUZZ=ON -DDYNSCHED_SANITIZE="address,undefined")
  if command -v clang++ > /dev/null 2>&1; then
    FUZZ_ARGS+=(-DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++)
  else
    echo "NOTE: clang++ not found; fuzzing without coverage feedback" \
         "(install clang or pass '--skip fuzz' to silence this)" >&2
  fi
  echo "=== [fuzz] configure + build harnesses ==="
  cmake -B build-fuzz -S . "${FUZZ_ARGS[@]}" > build-fuzz.cmake.log 2>&1 \
    || { cat build-fuzz.cmake.log; FAILED="$FAILED fuzz"; }
  if [[ " $FAILED " != *" fuzz "* ]]; then
    cmake --build build-fuzz -j "$JOBS" --target fuzz_swf fuzz_flags fuzz_mps \
      || FAILED="$FAILED fuzz"
  fi
  if [[ " $FAILED " != *" fuzz "* ]]; then
    for harness in swf flags mps; do
      echo "=== [fuzz] fuzz_$harness (${FUZZ_SECONDS}s, seed corpus) ==="
      "build-fuzz/fuzz/fuzz_$harness" -max_total_time="$FUZZ_SECONDS" \
          -seed=1 "fuzz/corpus/$harness" || { FAILED="$FAILED fuzz"; break; }
    done
  fi
fi

if [[ -n "$FAILED" ]]; then
  echo "check.sh FAILED:$FAILED" >&2
  exit 1
fi
echo "check.sh: all modes green"
