#!/usr/bin/env bash
# Correctness driver: runs the full ctest suite under ASan/UBSan and TSan
# with the schedule audit enabled, builds src/ under the curated .clang-tidy
# gate and under Clang's -Wthread-safety capability analysis, runs the
# dynsched-lint project-rule linter (including the DSL1xx hot-path
# performance rules), fuzzes the parser harnesses for a fixed 30-second
# budget each, and replays the pinned bench_exact_solvers scenario — with
# allocation tracking compiled in — against the committed BENCH_exact.json
# baseline, counters and allocation totals both. Exits non-zero on any
# failure; missing required tools fail fast instead of silently skipping a
# gate.
#
# The serve leg drives the dynsched-server daemon end to end: a reference
# run with a graceful SIGTERM drain, a journal-resume replay that must diff
# byte-identical, a five-kind fault soak that must still answer every
# request, a kill matrix (SIGKILL-equivalent exit 137 right after answer N,
# then resume), and the bench_serve_throughput accounting gate against the
# committed BENCH_serve.json.
#
# Usage: scripts/check.sh [--jobs N] [--rebaseline-bench]
#          [--skip asan|tsan|tidy|wsafety|lint|fuzz|faults|kill|serve|bench]...
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FUZZ_SECONDS=30
SKIP=""
REBASELINE_BENCH=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs) JOBS="$2"; shift 2 ;;
    --skip) SKIP="$SKIP $2"; shift 2 ;;
    --rebaseline-bench) REBASELINE_BENCH=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

skip() { [[ " $SKIP " == *" $1 "* ]]; }

# Tool preflight: a gate whose tool is absent must fail loudly, not produce
# a green run that never executed. Opting out is explicit via --skip.
if ! skip tidy && ! command -v clang-tidy > /dev/null 2>&1; then
  echo "check.sh: clang-tidy not found but the tidy gate is enabled." >&2
  echo "  install it (e.g. 'apt-get install clang-tidy') or pass" >&2
  echo "  '--skip tidy' to opt out explicitly." >&2
  exit 2
fi
if ! skip wsafety && ! command -v clang++ > /dev/null 2>&1; then
  echo "check.sh: clang++ not found but the -Wthread-safety gate is" >&2
  echo "  enabled (the capability annotations only mean something to" >&2
  echo "  Clang). Install clang or pass '--skip wsafety' explicitly." >&2
  exit 2
fi

# Every audited code path validates its schedules during these runs.
export DYNSCHED_AUDIT=1
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

run_mode() {
  local name="$1"; shift
  local dir="build-$name"
  echo "=== [$name] configure + build ==="
  cmake -B "$dir" -S . -DDYNSCHED_WERROR=ON "$@" > "$dir.cmake.log" 2>&1 || {
    cat "$dir.cmake.log"; return 1;
  }
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

FAILED=""

# build-plain doubles as the bench build; allocation tracking is compiled in
# so the replayed scenario carries the alloc counters the baseline gates on.
PLAIN_FLAGS=(-DDYNSCHED_WERROR=ON -DDYNSCHED_ALLOC_TRACK=ON)

if ! skip lint; then
  # dynsched-lint first: it is the cheapest gate and its findings (a raw
  # std::mutex, an unguarded write) usually explain later failures. The
  # linter deliberately links nothing from src/, so this builds even when
  # the tree under scan does not. The layer contract is always on here, and
  # the resolved module graph is emitted as JSON + dot on every run.
  echo "=== [lint] dynsched-lint over src/ and tools/ ==="
  cmake -B build-plain -S . "${PLAIN_FLAGS[@]}" > build-plain.cmake.log 2>&1 \
    || { cat build-plain.cmake.log; FAILED="$FAILED lint"; }
  if [[ " $FAILED " != *" lint "* ]]; then
    cmake --build build-plain -j "$JOBS" --target dynsched_lint \
      && build-plain/tools/dynsched_lint --layers tools/lint/layers.txt \
           --graph-json build-plain/module_graph.json \
           --graph-dot build-plain/module_graph.dot src tools \
      || FAILED="$FAILED lint"
  fi
  if [[ " $FAILED " != *" lint "* ]]; then
    # The rule tables in DESIGN.md must list exactly the shipped catalog.
    echo "=== [lint] rule catalog vs DESIGN.md ==="
    python3 scripts/lint_rules_check.py build-plain/tools/dynsched_lint \
      || FAILED="$FAILED lint"
  fi
fi

if ! skip asan; then
  run_mode asan -DDYNSCHED_SANITIZE="address,undefined" || FAILED="$FAILED asan"
fi

if ! skip tsan; then
  # Allocation tracking is compiled in here so TSan watches the counting
  # hooks too (alloc_tracker_test's ThreadPool test races them on purpose).
  run_mode tsan -DDYNSCHED_SANITIZE=thread -DDYNSCHED_ALLOC_TRACK=ON \
    || FAILED="$FAILED tsan"
fi

if ! skip faults; then
  # Fault matrix: each DYNSCHED_FAULTS kind forces a different rung of the
  # supervised degradation ladder; the FaultMatrix suite asserts that the
  # study still completes with a feasible schedule on every step. Runs
  # against the ASan build so a fault-path bug also trips the sanitizers.
  if [[ ! -x build-asan/tests/supervised_test ]]; then
    echo "=== [faults] building supervised_test (asan) ==="
    cmake -B build-asan -S . -DDYNSCHED_WERROR=ON \
        -DDYNSCHED_SANITIZE="address,undefined" > build-asan.cmake.log 2>&1 \
      || { cat build-asan.cmake.log; FAILED="$FAILED faults"; }
    [[ " $FAILED " == *" faults "* ]] \
      || cmake --build build-asan -j "$JOBS" --target supervised_test \
      || FAILED="$FAILED faults"
  fi
  if [[ " $FAILED " != *" faults "* ]]; then
    for fault in deadline-now oom-at-estimate lp-numerical-failure \
                 lp-numerical-failure=1 fail-at-node=1 fail-at-step=0 \
                 fail-at-step=all; do
      echo "=== [faults] DYNSCHED_FAULTS=$fault ==="
      DYNSCHED_FAULTS="$fault" build-asan/tests/supervised_test \
          --gtest_filter='FaultMatrix.*' \
        || { FAILED="$FAILED faults"; break; }
    done
  fi
fi

if ! skip kill; then
  # Kill matrix: run a small journaled study, hard-kill the process right
  # after it persists row N (DYNSCHED_FAULTS=kill-at-step=N, exit 137), then
  # resume from the journal. The canonical (timing-free) report must be
  # byte-identical to an uninterrupted journal-free run for N in {first,
  # mid, last}. A stale journal written by an incompatible format version
  # must fail fast with a structured error, not be misread.
  if [[ ! -x build-asan/bench/bench_table1 ]]; then
    echo "=== [kill] building bench_table1 (asan) ==="
    cmake -B build-asan -S . -DDYNSCHED_WERROR=ON \
        -DDYNSCHED_SANITIZE="address,undefined" > build-asan.cmake.log 2>&1 \
      || { cat build-asan.cmake.log; FAILED="$FAILED kill"; }
    [[ " $FAILED " == *" kill "* ]] \
      || cmake --build build-asan -j "$JOBS" --target bench_table1 \
      || FAILED="$FAILED kill"
  fi
  if [[ " $FAILED " != *" kill "* ]]; then
    KILL_DIR="$(mktemp -d)"
    # Node-limited (not time-limited) solves: wall-clock cutoffs are not
    # reproducible, a node budget is, and byte-identical resume needs
    # deterministic solves.
    BENCH=(build-asan/bench/bench_table1 --trace-jobs 400 --rows 4
           --max-waiting 12 --time-limit 900 --max-nodes 300 --threads 1)
    echo "=== [kill] reference run (no journal) ==="
    "${BENCH[@]}" --report "$KILL_DIR/reference.txt" > /dev/null \
      || FAILED="$FAILED kill"
    # 4 rows -> kill after persisting the first (0), a middle (2), and the
    # last (3) row; the resumed run must reproduce the reference exactly.
    for step in 0 2 3; do
      [[ " $FAILED " == *" kill "* ]] && break
      echo "=== [kill] kill-at-step=$step -> resume ==="
      rc=0
      DYNSCHED_FAULTS="kill-at-step=$step" "${BENCH[@]}" \
          --journal "$KILL_DIR/step$step.journal" > /dev/null 2>&1 || rc=$?
      if [[ "$rc" -ne 137 ]]; then
        echo "kill-at-step=$step: expected exit 137, got $rc" >&2
        FAILED="$FAILED kill"
        break
      fi
      "${BENCH[@]}" --journal "$KILL_DIR/step$step.journal" --resume \
          --report "$KILL_DIR/step$step.txt" > /dev/null \
        || { FAILED="$FAILED kill"; break; }
      cmp "$KILL_DIR/reference.txt" "$KILL_DIR/step$step.txt" \
        || { echo "kill-at-step=$step: resumed report differs" >&2
             FAILED="$FAILED kill"; break; }
    done
    if [[ " $FAILED " != *" kill "* ]]; then
      echo "=== [kill] stale journal format version fails fast ==="
      printf 'DSJRNL1\n\x02\x00\x00\x00\x00\x00\x00\x00' \
        > "$KILL_DIR/stale.journal"
      rc=0
      "${BENCH[@]}" --journal "$KILL_DIR/stale.journal" --resume \
          > /dev/null 2> "$KILL_DIR/stale.err" || rc=$?
      if [[ "$rc" -eq 0 ]] \
          || ! grep -q "incompatible format version" "$KILL_DIR/stale.err"; then
        echo "stale journal: expected a structured version error, got" \
             "exit $rc:" >&2
        cat "$KILL_DIR/stale.err" >&2
        FAILED="$FAILED kill"
      fi
    fi
    rm -rf "$KILL_DIR"
  fi
fi

if ! skip serve; then
  # Serving layer end to end. All requests are node-limited (never
  # wall-clock-limited) — same determinism rationale as the kill matrix:
  # replayed and re-solved answers must diff byte-identical.
  echo "=== [serve] build server, client, and throughput bench ==="
  cmake -B build-plain -S . "${PLAIN_FLAGS[@]}" > build-plain.cmake.log 2>&1 \
    || { cat build-plain.cmake.log; FAILED="$FAILED serve"; }
  if [[ " $FAILED " != *" serve "* ]]; then
    cmake --build build-plain -j "$JOBS" --target \
        dynsched_server dynsched_client bench_serve_throughput \
      || FAILED="$FAILED serve"
  fi
  if [[ " $FAILED " != *" serve "* ]]; then
    SERVE_DIR="$(mktemp -d)"
    SOCK="$SERVE_DIR/dynsched.sock"
    SERVER=(build-plain/tools/dynsched_server --socket "$SOCK")
    CLIENT=(build-plain/tools/dynsched_client --socket "$SOCK" --count 6
            --seed 7 --max-nodes 300 --retries 6 --timeout-ms 60000)
    serve_stop() {  # serve_stop PID EXPECTED_RC LABEL
      local rc=0
      kill -TERM "$1" 2> /dev/null || true
      wait "$1" || rc=$?
      if [[ "$rc" -ne "$2" ]]; then
        echo "serve: $3: expected exit $2, got $rc" >&2
        return 1
      fi
    }

    echo "=== [serve] reference run + graceful drain ==="
    "${SERVER[@]}" --journal "$SERVE_DIR/a.journal" 2> "$SERVE_DIR/a.log" &
    SERVER_PID=$!
    timeout 300 "${CLIENT[@]}" > "$SERVE_DIR/reference.txt" \
      || FAILED="$FAILED serve"
    serve_stop "$SERVER_PID" 0 "graceful drain" || FAILED="$FAILED serve"

    if [[ " $FAILED " != *" serve "* ]]; then
      echo "=== [serve] journal resume replays byte-identical ==="
      "${SERVER[@]}" --journal "$SERVE_DIR/a.journal" --resume \
          2> "$SERVE_DIR/b.log" &
      SERVER_PID=$!
      timeout 300 "${CLIENT[@]}" > "$SERVE_DIR/replay.txt" \
        || FAILED="$FAILED serve"
      cmp "$SERVE_DIR/reference.txt" "$SERVE_DIR/replay.txt" \
        || { echo "serve: resumed replay differs from the reference" >&2
             FAILED="$FAILED serve"; }
      timeout 60 "${CLIENT[@]}" --health > "$SERVE_DIR/health.txt" \
        || FAILED="$FAILED serve"
      grep -q "recovered 6 answers" "$SERVE_DIR/health.txt" \
        || { echo "serve: expected 6 recovered answers in:" >&2
             cat "$SERVE_DIR/health.txt" >&2; FAILED="$FAILED serve"; }
      serve_stop "$SERVER_PID" 0 "resume drain" || FAILED="$FAILED serve"
    fi

    if [[ " $FAILED " != *" serve "* ]]; then
      # Every injected serve fault must surface as a structured, retryable
      # client outcome: the full stream still answers Ok on every request.
      echo "=== [serve] fault soak (all five serve-path kinds) ==="
      DYNSCHED_FAULTS="accept-fail=1,short-read=2,short-write=4,force-shed=2,worker-stall=3" \
          "${SERVER[@]}" --journal "$SERVE_DIR/c.journal" \
          2> "$SERVE_DIR/c.log" &
      SERVER_PID=$!
      timeout 300 "${CLIENT[@]}" > "$SERVE_DIR/soak.txt" \
        || { echo "serve: fault soak left requests unanswered" >&2
             FAILED="$FAILED serve"; }
      serve_stop "$SERVER_PID" 0 "fault-soak drain" || FAILED="$FAILED serve"
    fi

    if [[ " $FAILED " != *" serve "* ]]; then
      # Kill matrix: exit 137 right after persisting answer N, resume from
      # the journal, re-send the stream — byte-identical to the reference.
      for step in 0 2; do
        echo "=== [serve] kill-at-step=$step -> resume ==="
        DYNSCHED_FAULTS="kill-at-step=$step" \
            "${SERVER[@]}" --journal "$SERVE_DIR/kill$step.journal" \
            2> "$SERVE_DIR/kill$step.log" &
        SERVER_PID=$!
        timeout 120 "${CLIENT[@]}" > /dev/null 2>&1 || true
        serve_stop "$SERVER_PID" 137 "kill-at-step=$step" \
          || { FAILED="$FAILED serve"; break; }
        "${SERVER[@]}" --journal "$SERVE_DIR/kill$step.journal" --resume \
            2>> "$SERVE_DIR/kill$step.log" &
        SERVER_PID=$!
        timeout 300 "${CLIENT[@]}" > "$SERVE_DIR/kill$step.txt" \
          || { FAILED="$FAILED serve"; break; }
        cmp "$SERVE_DIR/reference.txt" "$SERVE_DIR/kill$step.txt" \
          || { echo "serve: kill-at-step=$step resumed answers differ" >&2
               FAILED="$FAILED serve"; break; }
        serve_stop "$SERVER_PID" 0 "post-kill drain" \
          || { FAILED="$FAILED serve"; break; }
      done
    fi

    if [[ " $FAILED " != *" serve "* ]]; then
      echo "=== [serve] bench_serve_throughput accounting gate ==="
      if build-plain/bench/bench_serve_throughput \
          --socket "$SERVE_DIR/bench.sock" \
          --json build-plain/BENCH_serve.current.json > /dev/null; then
        if [[ "$REBASELINE_BENCH" -eq 1 ]]; then
          cp build-plain/BENCH_serve.current.json BENCH_serve.json
          echo "serve: BENCH_serve.json rebaselined; review and commit it"
        else
          python3 scripts/bench_check.py --serve BENCH_serve.json \
              build-plain/BENCH_serve.current.json || FAILED="$FAILED serve"
        fi
      else
        FAILED="$FAILED serve"
      fi
    fi
    rm -rf "$SERVE_DIR"
  fi
fi

if ! skip wsafety; then
  # Clang Thread Safety Analysis over the whole tree, warnings as errors:
  # every DYNSCHED_GUARDED_BY field, REQUIRES contract, and MutexLock scope
  # is checked statically. Runs the test suite too — the annotations are
  # compiled under a second toolchain, which has caught portability slips.
  run_mode wsafety -DCMAKE_CXX_COMPILER=clang++ -DDYNSCHED_THREAD_SAFETY=ON \
    || FAILED="$FAILED wsafety"
fi

if ! skip tidy; then
  # The analysis gate only needs the library targets; --warnings-as-errors
  # inside DYNSCHED_ANALYZE fails the build on any finding in src/.
  echo "=== [tidy] clang-tidy gate over src/ ==="
  cmake -B build-tidy -S . -DDYNSCHED_ANALYZE=ON > build-tidy.cmake.log 2>&1 \
    || { cat build-tidy.cmake.log; FAILED="$FAILED tidy"; }
  cmake --build build-tidy -j "$JOBS" --target \
      dynsched_util dynsched_trace dynsched_core dynsched_analysis \
      dynsched_lp dynsched_mip dynsched_sim dynsched_tip \
    || FAILED="$FAILED tidy"
fi

if ! skip fuzz; then
  # Coverage-guided under Clang (libFuzzer); with gcc the harnesses fall
  # back to the blind-mutation replay driver — weaker, but the oracles and
  # sanitizers still run, so say so instead of silently degrading.
  FUZZ_ARGS=(-DDYNSCHED_FUZZ=ON -DDYNSCHED_SANITIZE="address,undefined")
  if command -v clang++ > /dev/null 2>&1; then
    FUZZ_ARGS+=(-DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++)
  else
    echo "NOTE: clang++ not found; fuzzing without coverage feedback" \
         "(install clang or pass '--skip fuzz' to silence this)" >&2
  fi
  echo "=== [fuzz] configure + build harnesses ==="
  cmake -B build-fuzz -S . "${FUZZ_ARGS[@]}" > build-fuzz.cmake.log 2>&1 \
    || { cat build-fuzz.cmake.log; FAILED="$FAILED fuzz"; }
  if [[ " $FAILED " != *" fuzz "* ]]; then
    cmake --build build-fuzz -j "$JOBS" --target fuzz_swf fuzz_flags fuzz_mps \
      || FAILED="$FAILED fuzz"
  fi
  if [[ " $FAILED " != *" fuzz "* ]]; then
    for harness in swf flags mps; do
      echo "=== [fuzz] fuzz_$harness (${FUZZ_SECONDS}s, seed corpus) ==="
      "build-fuzz/fuzz/fuzz_$harness" -max_total_time="$FUZZ_SECONDS" \
          -seed=1 "fuzz/corpus/$harness" || { FAILED="$FAILED fuzz"; break; }
    done
  fi
fi

if ! skip bench; then
  # Performance baseline: replay the pinned bench_exact_solvers scenario
  # (node-limited, hence deterministic — same rationale as the kill matrix)
  # and gate its counters against the committed BENCH_exact.json. Counters
  # are host-independent; wall-clock only gates on a matching host. The
  # scenario here must match the baseline's config block exactly.
  BENCH_SCENARIO=(--trace-jobs 700 --seed 44 --steps 3 --max-nodes 600
                  --time-limit 1000000)
  echo "=== [bench] bench_check.py self-test ==="
  python3 scripts/bench_check.py --self-test || FAILED="$FAILED bench"
  echo "=== [bench] bench_exact_solvers baseline ==="
  cmake -B build-plain -S . "${PLAIN_FLAGS[@]}" > build-plain.cmake.log 2>&1 \
    || { cat build-plain.cmake.log; FAILED="$FAILED bench"; }
  if [[ " $FAILED " != *" bench "* ]]; then
    cmake --build build-plain -j "$JOBS" --target bench_exact_solvers \
      || FAILED="$FAILED bench"
  fi
  if [[ " $FAILED " != *" bench "* ]]; then
    # The alloc hooks must stay out of binaries built without the option.
    # When tracking is on, the binary *defines* global operator new (a 'T'
    # symbol); a default-configured binary must only import it from
    # libstdc++ ('U'). Zero-overhead-when-off, checked at the symbol level.
    if [[ -x build/bench/bench_exact_solvers ]] \
        && command -v nm > /dev/null 2>&1; then
      if nm -C build/bench/bench_exact_solvers 2>/dev/null \
          | grep -Eq "^[0-9a-f]+ T operator new\(unsigned long\)"; then
        echo "bench: replaced operator new leaked into a default" \
             "(DYNSCHED_ALLOC_TRACK=OFF) binary" >&2
        FAILED="$FAILED bench"
      fi
    fi
  fi
  if [[ " $FAILED " != *" bench "* ]]; then
    if build-plain/bench/bench_exact_solvers "${BENCH_SCENARIO[@]}" \
        --json build-plain/BENCH_exact.current.json > /dev/null; then
      if [[ "$REBASELINE_BENCH" -eq 1 ]]; then
        cp build-plain/BENCH_exact.current.json BENCH_exact.json
        echo "bench: BENCH_exact.json rebaselined; review and commit it"
      else
        python3 scripts/bench_check.py BENCH_exact.json \
            build-plain/BENCH_exact.current.json || FAILED="$FAILED bench"
      fi
    else
      FAILED="$FAILED bench"
    fi
  fi
fi

if [[ -n "$FAILED" ]]; then
  echo "check.sh FAILED:$FAILED" >&2
  exit 1
fi
rm -f build-*.cmake.log  # configure logs only matter when a mode failed
echo "check.sh: all modes green"
