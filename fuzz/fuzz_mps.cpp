// MPS write→parse round-trip oracle.
//
// Any text readMps() accepts describes a model; writeMps() normalizes it
// (merged duplicate entries, dropped zeros, canonical bound lines, shortest
// round-trip number formatting). One normalization must reach a fixed point:
// parse(input) → write = T2, parse(T2) → write = T3, and T2 == T3 byte for
// byte. A mismatch means the writer emits something the reader misreads (or
// the reader loses information) — exactly the bug class this pair guards
// against. parse(T2) itself must never throw: the writer's output is always
// well-formed.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "dynsched/lp/mps_reader.hpp"
#include "dynsched/lp/mps_writer.hpp"
#include "dynsched/util/error.hpp"

namespace {

std::string normalize(const dynsched::lp::MpsProblem& problem) {
  dynsched::lp::MpsOptions options;
  options.problemName =
      problem.name.empty() ? "FUZZ" : problem.name;
  options.integerColumns = problem.integerColumns;
  std::ostringstream out;
  dynsched::lp::writeMps(problem.model, out, options);
  return out.str();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  dynsched::lp::MpsProblem first;
  try {
    first = dynsched::lp::readMps(text);
  } catch (const dynsched::CheckError&) {
    return 0;  // structured rejection of malformed input is the contract
  }
  const std::string t2 = normalize(first);
  const std::string t3 = normalize(dynsched::lp::readMps(t2));
  if (t2 != t3) __builtin_trap();
  return 0;
}
