// SWF parser harness.
//
// Properties under test: a strict parse may only reject input via CheckError;
// a lenient parse never throws; a lenient parse's output re-serializes to SWF
// that strict-parses back to the same number of jobs (write→parse inverse).
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "dynsched/trace/swf.hpp"
#include "dynsched/util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  {
    std::istringstream in(text);
    try {
      (void)dynsched::trace::SwfTrace::parse(in, /*lenient=*/false);
    } catch (const dynsched::CheckError&) {
      // Rejecting malformed input with a structured error is the contract.
    }
  }
  std::istringstream in(text);
  const dynsched::trace::SwfTrace trace =
      dynsched::trace::SwfTrace::parse(in, /*lenient=*/true);
  std::ostringstream out;
  trace.write(out);
  std::istringstream back(out.str());
  const dynsched::trace::SwfTrace again =
      dynsched::trace::SwfTrace::parse(back, /*lenient=*/false);
  if (again.jobs().size() != trace.jobs().size()) __builtin_trap();
  return 0;
}
