// Flags parser harness.
//
// The input is split on newlines into an argv. A representative FlagSet (one
// flag of each kind) must either parse it or reject it via CheckError —
// never crash, leak, or loop. "--help" would print usage to stdout, so those
// tokens are redirected through usage() directly instead.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dynsched/util/error.hpp"
#include "dynsched/util/flags.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::vector<std::string> args{"fuzz_flags"};
  std::string current;
  for (std::size_t i = 0; i < size; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      args.push_back(current);
      current.clear();
    } else if (c != '\0') {  // argv strings cannot contain NUL
      current.push_back(c);
    }
  }
  if (!current.empty()) args.push_back(current);

  dynsched::util::FlagSet flags("fuzz_flags");
  flags.addInt("nodes", 430, "machine size");
  flags.addDouble("ratio", 1.0, "a double flag");
  flags.addString("trace", "", "a string flag");
  flags.addBool("verbose", false, "a bool flag");
  (void)flags.usage();

  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& a : args) {
    if (a == "--help") continue;  // exercised via usage() above
    argv.push_back(a.c_str());
  }
  try {
    (void)flags.parse(static_cast<int>(argv.size()), argv.data());
  } catch (const dynsched::CheckError&) {
    // Structured rejection is the contract for unknown/malformed flags.
  }
  return 0;
}
