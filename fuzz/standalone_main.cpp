// Replay driver for toolchains without libFuzzer (gcc).
//
// Understands enough of libFuzzer's command line that scripts/check.sh and
// ctest can invoke harnesses the same way under either compiler:
//
//   harness [-runs=N] [-max_total_time=SECONDS] [-seed=S] path...
//
// Paths are corpus files or directories (walked recursively). Every input is
// replayed once; with -max_total_time the driver then keeps running random
// byte-level mutations of the seeds (blind — no coverage feedback, that
// needs the Clang build) until the budget expires. Any escape of the
// harness's contract (unexpected exception, trap, sanitizer report) aborts.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> readFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    std::exit(2);
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

/// xorshift64*: deterministic for a given -seed, no global state.
std::uint64_t nextRandom(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& seed,
                                 std::uint64_t& rng) {
  std::vector<std::uint8_t> out = seed;
  const std::uint64_t edits = 1 + nextRandom(rng) % 8;
  for (std::uint64_t e = 0; e < edits; ++e) {
    switch (nextRandom(rng) % 3) {
      case 0:  // flip a byte
        if (!out.empty()) {
          out[nextRandom(rng) % out.size()] =
              static_cast<std::uint8_t>(nextRandom(rng));
        }
        break;
      case 1:  // insert a byte
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(
                                     nextRandom(rng) % (out.size() + 1)),
                   static_cast<std::uint8_t>(nextRandom(rng)));
        break;
      default:  // delete a byte
        if (!out.empty()) {
          out.erase(out.begin() +
                    static_cast<std::ptrdiff_t>(nextRandom(rng) % out.size()));
        }
        break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  long maxTotalTime = 0;
  std::uint64_t seed = 1;
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-max_total_time=", 16) == 0) {
      maxTotalTime = std::atol(arg + 16);
    } else if (std::strncmp(arg, "-seed=", 6) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(arg + 6));
    } else if (arg[0] == '-') {
      // -runs=N and other libFuzzer flags: replay semantics only, ignore.
    } else if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else {
      files.emplace_back(arg);
    }
  }
  std::sort(files.begin(), files.end());  // deterministic replay order

  std::vector<std::vector<std::uint8_t>> seeds;
  seeds.reserve(files.size());
  for (const auto& path : files) seeds.push_back(readFile(path));
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    LLVMFuzzerTestOneInput(seeds[i].data(), seeds[i].size());
  }
  std::fprintf(stderr, "replayed %zu seed inputs\n", seeds.size());

  if (maxTotalTime > 0 && !seeds.empty()) {
    std::uint64_t rng = seed ? seed : 1;
    std::uint64_t executed = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(maxTotalTime);
    while (std::chrono::steady_clock::now() < deadline) {
      const std::vector<std::uint8_t> input =
          mutate(seeds[nextRandom(rng) % seeds.size()], rng);
      {
        // Persisted before the run: if the harness traps, this file holds
        // the culprit (the libFuzzer builds write crash-* files instead).
        std::ofstream dump("crash-last-input", std::ios::binary);
        dump.write(reinterpret_cast<const char*>(input.data()),
                   static_cast<std::streamsize>(input.size()));
      }
      LLVMFuzzerTestOneInput(input.data(), input.size());
      ++executed;
    }
    std::remove("crash-last-input");
    std::fprintf(stderr, "executed %llu blind mutations in %lds\n",
                 static_cast<unsigned long long>(executed), maxTotalTime);
  }
  return 0;
}
