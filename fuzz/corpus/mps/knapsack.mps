NAME          KNAPSACK
ROWS
 N  COST
 L  cap
COLUMNS
    MARKER0  'MARKER'  'INTORG'
    x1  COST  -10
    x1  cap  5
    x2  COST  -13
    x2  cap  6
    x3  COST  -7
    x3  cap  4
    MARKER1  'MARKER'  'INTEND'
RHS
    RHS  cap  10
BOUNDS
 UP BND  x1  1
 UP BND  x2  1
 UP BND  x3  1
ENDATA
