NAME          RANGED
ROWS
 N  COST
 E  assign
 L  range
 G  floor
 N  freerow
COLUMNS
    x1  COST  2.5
    x1  assign  1
    x1  range  2
    yfree  COST  -1
    yfree  range  1
    yfree  freerow  3
    zfix  assign  1
    zfix  floor  0.5
RHS
    RHS  assign  1
    RHS  range  3
    RHS  floor  0.25
RANGES
    RNG  range  2
BOUNDS
 FR BND  yfree
 FX BND  zfix  2
 LO BND  x1  0.5
 UP BND  x1  4
ENDATA
